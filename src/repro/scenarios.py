"""Scenario registry: the workload axes the reproduction sweeps.

The paper's evaluation covers one slice of the scenario space — dense
8-bit convolutions on VGG/ResNet with the classifier head left out of
the timing study.  A :class:`Scenario` is one declarative cell of the
*opened* space:

* **model recipe x dataset** — any :data:`repro.experiments.common.MODEL_RECIPES`
  entry, including the depthwise-separable ``mobilenet_cifar10`` whose
  grouped convolutions lower to many short per-group GEMMs (and whose
  classifier head, like every recipe's, is a lowered 1x1 conv covered by
  TER simulation and fault injection);
* **per-layer bit widths** — mixed-precision quantization expressed as
  first-match-wins ``(pattern, n_bits)`` rules over layer names
  (``fnmatch`` patterns), resolved against the recipe's layers;
* **mapping strategies** and **PVTA corners** — which READ variants are
  measured and which corners are simulated / injected.

Named suites (:data:`SUITES`) bundle scenarios for one sweep:
``read-repro sweep --suite <name>`` plans every scenario's simulation
and injection jobs, deduplicates them across scenarios, and executes
them as one cached engine sweep (see :mod:`repro.experiments.sweep`).

The registry is deliberately declarative and hashable: everything that
affects a result is a plain value, so scenario-derived engine jobs stay
content-addressable and the hypothesis-driven conformance harness in
``tests/test_backend_conformance.py`` can draw random scenarios and
assert cross-backend/cross-runtime agreement per draw.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, List, Sequence, Tuple

from .core.pipeline import MappingStrategy
from .errors import ConfigurationError, unknown_name_error
from .hw.variations import PAPER_CORNERS, TER_EVAL_CORNER, PvtaCondition

#: All strategies, in the figures' plotting order (mirrors
#: :data:`repro.experiments.common.ALL_STRATEGIES`, which cannot be
#: imported here without a package cycle).
_ALL_STRATEGIES = (
    MappingStrategy.BASELINE,
    MappingStrategy.REORDER,
    MappingStrategy.CLUSTER_THEN_REORDER,
)


@dataclass(frozen=True)
class Scenario:
    """One declarative cell of the scenario space.

    Attributes
    ----------
    name:
        Unique name within its suite (labels jobs and report sections).
    recipe:
        Model/dataset combination (validated against ``MODEL_RECIPES``
        when the scenario is materialized).
    strategies:
        READ variants measured (accepts strategy names or members).
    corners:
        PVTA corners every layer-TER simulation evaluates.
    inject_corners:
        Corners at which a full Eq.1 -> BER -> injection campaign runs
        per strategy (a subset of ``corners`` keeps suites affordable;
        the default is the TER evaluation corner).
    bits:
        Mixed-precision rules: ``(pattern, n_bits)`` pairs matched
        first-to-last against layer names with :func:`fnmatch.fnmatchcase`;
        unmatched layers use ``default_bits``.
    topk:
        Accuracy protocol of the injection campaigns.
    seed:
        Training/dataset seed of the underlying bundle.
    """

    name: str
    recipe: str
    strategies: Tuple[MappingStrategy, ...] = _ALL_STRATEGIES
    corners: Tuple[PvtaCondition, ...] = tuple(PAPER_CORNERS)
    inject_corners: Tuple[PvtaCondition, ...] = (TER_EVAL_CORNER,)
    bits: Tuple[Tuple[str, int], ...] = ()
    default_bits: int = 8
    topk: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        strategies = tuple(
            MappingStrategy.from_name(s) if isinstance(s, str) else s
            for s in self.strategies
        )
        object.__setattr__(self, "strategies", strategies)
        object.__setattr__(self, "corners", tuple(self.corners))
        object.__setattr__(self, "inject_corners", tuple(self.inject_corners))
        object.__setattr__(
            self, "bits", tuple((str(p), int(b)) for p, b in self.bits)
        )
        if not self.strategies:
            raise ConfigurationError(f"scenario {self.name}: need at least one strategy")
        if not self.corners:
            raise ConfigurationError(f"scenario {self.name}: need at least one corner")
        corner_names = {c.name for c in self.corners}
        for corner in self.inject_corners:
            if corner.name not in corner_names:
                raise ConfigurationError(
                    f"scenario {self.name}: injection corner {corner.name!r} "
                    "is not among the simulated corners"
                )
        for pattern, n_bits in self.bits:
            if not 2 <= n_bits <= 16:
                raise ConfigurationError(
                    f"scenario {self.name}: n_bits {n_bits} for {pattern!r} outside [2, 16]"
                )

    # ------------------------------------------------------------------ #
    def resolve_bits(self, layer_names: Sequence[str]) -> Dict[str, int]:
        """Resolve the bit-width rules against concrete layer names.

        First matching pattern wins; layers resolving to ``default_bits``
        are omitted (so equal effective precisions hash equally — see
        :func:`repro.experiments.common.canonical_bits`).

        A rule whose pattern matches *no* layer is a configuration error:
        a typo'd pattern would otherwise silently yield a uniform-
        precision sweep that still reports itself as mixed-precision.
        Set ``REPRO_ALLOW_UNMATCHED_BITS=1`` to downgrade the error to a
        warning (e.g. one rule list shared across recipes with different
        layer sets).
        """
        resolved: Dict[str, int] = {}
        matched = [False] * len(self.bits)
        for layer in layer_names:
            for i, (pattern, n_bits) in enumerate(self.bits):
                if fnmatchcase(layer, pattern):
                    matched[i] = True
                    if n_bits != self.default_bits:
                        resolved[layer] = n_bits
                    break
        unmatched = [pattern for (pattern, _), hit in zip(self.bits, matched) if not hit]
        if unmatched:
            message = (
                f"scenario {self.name}: bit rule pattern(s) "
                f"{', '.join(repr(p) for p in unmatched)} match no layer "
                f"(layers: {', '.join(layer_names)})"
            )
            if os.environ.get("REPRO_ALLOW_UNMATCHED_BITS"):
                warnings.warn(message, RuntimeWarning, stacklevel=2)
            else:
                raise ConfigurationError(message)
        return resolved

    def describe(self) -> Dict[str, object]:
        """Provenance record (manifest/report header material)."""
        return {
            "name": self.name,
            "recipe": self.recipe,
            "strategies": [s.value for s in self.strategies],
            "corners": [c.name for c in self.corners],
            "inject_corners": [c.name for c in self.inject_corners],
            "bits": [list(rule) for rule in self.bits],
            "default_bits": self.default_bits,
            "topk": self.topk,
            "seed": self.seed,
        }


#: Memo of :func:`layer_names_for_recipe`: building a throwaway float
#: model per lookup (He-init of every weight tensor) is pure waste when
#: a sweep resolves the same recipe's names once per phase.
_LAYER_NAME_CACHE: Dict[Tuple[str, float], List[str]] = {}


def layer_names_for_recipe(recipe: str, scale=None) -> List[str]:
    """Quantized-layer names of a recipe, without training it.

    Builds the (untrained) float model and lists every layer the
    quantizer lowers — feature convs, projection shortcuts and the
    classifier head — in module order.  Bit-width rules resolve against
    these names.  Memoized per (recipe, width).
    """
    # Imported lazily: repro.experiments imports this module's consumers.
    from .experiments.common import MODEL_RECIPES, get_scale
    from .nn.datasets import load_dataset
    from .nn.layers import Conv2d, Linear, SelfAttention
    from .nn.models import build_model

    if recipe not in MODEL_RECIPES:
        raise unknown_name_error("recipe", recipe, MODEL_RECIPES)
    scale = scale or get_scale()
    key = (recipe, scale.width)
    cached = _LAYER_NAME_CACHE.get(key)
    if cached is not None:
        return list(cached)
    model_name, dataset_name = MODEL_RECIPES[recipe]
    n_classes = load_dataset(dataset_name).spec.n_classes
    model = build_model(model_name, n_classes=n_classes, width=scale.width)
    names: List[str] = []
    for module in model.modules():
        if isinstance(module, (Conv2d, Linear)):
            names.append(module.name)
        elif isinstance(module, SelfAttention):
            # Runtime activation-activation GEMMs (QK^T, attention@V)
            # have no weight module, but the quantizer lowers them too.
            names.extend(module.dynamic_gemm_names)
    _LAYER_NAME_CACHE[key] = names
    return list(names)


# ---------------------------------------------------------------------- #
# Named suites
# ---------------------------------------------------------------------- #
#: The paper's own evaluation matrix, now head-inclusive: the four
#: Section V-A recipes, dense 8-bit, all strategies, all corners.
_PAPER_SUITE = tuple(
    Scenario(name=recipe, recipe=recipe, topk=3 if recipe == "vgg16_cifar100" else 1)
    for recipe in (
        "vgg16_cifar10",
        "resnet18_cifar10",
        "vgg16_cifar100",
        "resnet34_imagenet32",
    )
)

#: Depthwise-separable workload: grouped 3x3 + pointwise 1x1 GEMMs, the
#: short-reduction regime the dense suites never touch.
_MOBILE_SUITE = (
    Scenario(name="mobilenet", recipe="mobilenet_cifar10"),
)

#: Mixed precision over the dense recipes: front-loaded 8-bit features
#: with a narrow head, and an alternating-width ResNet.
_MIXED_SUITE = (
    Scenario(
        name="vgg16-taper",
        recipe="vgg16_cifar10",
        bits=(("conv0", 8), ("conv1", 8), ("conv2", 8), ("fc", 4), ("*", 6)),
    ),
    Scenario(
        name="resnet18-alt",
        recipe="resnet18_cifar10",
        bits=(("*.conv2", 4), ("*shortcut*", 8), ("fc", 6)),
    ),
)

#: Stress: every new axis at once — depthwise at 4 bits, and the
#: 20-class top-3 protocol on a narrow-head VGG.
_STRESS_SUITE = (
    Scenario(
        name="mobilenet-4bit",
        recipe="mobilenet_cifar10",
        bits=(("*", 4),),
    ),
    Scenario(
        name="vgg16-cifar100-head4",
        recipe="vgg16_cifar100",
        bits=(("fc", 4),),
        topk=3,
    ),
)

#: Transformer workload: a tiny single-head ViT whose attention GEMMs
#: (QK^T, attention@V) are runtime activation-activation products with
#: *signed* operand statistics — the regime where READ's single-zero-
#: crossing proof does not apply and applicability must be measured.
_TRANSFORMER_SUITE = (
    Scenario(name="mixer", recipe="mixer_cifar10"),
)

#: Named suites routed through ``read-repro sweep --suite <name>``.
SUITES: Dict[str, Tuple[Scenario, ...]] = {
    "paper": _PAPER_SUITE,
    "mobile": _MOBILE_SUITE,
    "mixed-precision": _MIXED_SUITE,
    "stress": _STRESS_SUITE,
    "transformer": _TRANSFORMER_SUITE,
}


def get_suite(name: str) -> Tuple[Scenario, ...]:
    """Look up a suite by name with the uniform unknown-name error."""
    try:
        return SUITES[name]
    except KeyError:
        raise unknown_name_error("suite", name, SUITES) from None


def suite_names() -> List[str]:
    """Registered suite names, sorted."""
    return sorted(SUITES)
