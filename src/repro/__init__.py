"""READ reproduction: reliability-enhanced accelerator dataflow optimization.

A full from-scratch implementation of the DATE 2023 paper "READ:
Reliability-Enhanced Accelerator Dataflow Optimization using Critical
Input Pattern Reduction" (Zhang et al.), including every substrate the
paper depends on: a bit-accurate MAC datapath with carry-chain dynamic
timing analysis, PVTA variation models, a systolic-array simulator, a
numpy DNN training/quantization stack, and a fault-injection framework.

Quickstart
----------
>>> import numpy as np
>>> from repro import plan_layer, MappingStrategy, SystolicArraySimulator
>>> rng = np.random.default_rng(0)
>>> weights = rng.integers(-128, 128, size=(64, 16))
>>> acts = rng.integers(0, 256, size=(32, 64))
>>> plan = plan_layer(weights, group_size=4,
...                   strategy=MappingStrategy.CLUSTER_THEN_REORDER)
>>> report = SystolicArraySimulator().run_gemm(acts, weights, plan)
>>> report.ter <= 1.0
True

Batches of such simulations go through the engine (see ``docs/engine.md``):
describe each as a :class:`SimJob`, pick a backend (``"reference"`` or the
vectorized ``"fast"``), and :class:`SimEngine` adds multi-process fan-out
plus an on-disk result cache keyed by a content hash of the job spec:

>>> from repro import SimEngine, SimJob, TER_EVAL_CORNER
>>> engine = SimEngine(backend="fast", use_cache=False)
>>> job = SimJob(acts=acts, weights=weights, corners=(TER_EVAL_CORNER,),
...              group_size=4, strategy=MappingStrategy.CLUSTER_THEN_REORDER)
>>> fast_report = engine.run(job)[TER_EVAL_CORNER.name]
>>> bool(abs(fast_report.ter - report.ter) < 1e-9)
True
>>> bool(np.array_equal(fast_report.outputs, report.outputs))
True
"""

from .arch import (
    PAPER_ARRAY,
    AcceleratorConfig,
    Dataflow,
    LayerReliabilityReport,
    SystolicArraySimulator,
)
from .core import (
    BalancedSignClusterer,
    LayerMappingPlan,
    LutCostModel,
    MappingStrategy,
    NetworkMappingPlan,
    count_sign_flips,
    plan_layer,
    plan_network,
    sort_input_channels,
)
from .engine import (
    SimEngine,
    SimJob,
    backend_names,
    configure_default_engine,
    default_engine,
    get_backend,
    job_key,
    register_backend,
)
from .errors import (
    ConfigurationError,
    MappingError,
    MappingFallbackWarning,
    QuantizationError,
    ReproError,
    ShapeError,
    TrainingError,
)
from .hw import (
    PAPER_CORNERS,
    TER_EVAL_CORNER,
    DelayModel,
    DynamicTimingAnalyzer,
    MacConfig,
    MacUnit,
    PvtaCondition,
    StaticTimingAnalyzer,
    corner_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "AcceleratorConfig",
    "BalancedSignClusterer",
    "ConfigurationError",
    "Dataflow",
    "DelayModel",
    "DynamicTimingAnalyzer",
    "LayerMappingPlan",
    "LayerReliabilityReport",
    "LutCostModel",
    "MacConfig",
    "MacUnit",
    "MappingError",
    "MappingFallbackWarning",
    "MappingStrategy",
    "NetworkMappingPlan",
    "PAPER_ARRAY",
    "PAPER_CORNERS",
    "PvtaCondition",
    "QuantizationError",
    "ReproError",
    "ShapeError",
    "SimEngine",
    "SimJob",
    "StaticTimingAnalyzer",
    "SystolicArraySimulator",
    "TER_EVAL_CORNER",
    "TrainingError",
    "backend_names",
    "configure_default_engine",
    "count_sign_flips",
    "corner_by_name",
    "default_engine",
    "get_backend",
    "job_key",
    "plan_layer",
    "plan_network",
    "register_backend",
    "sort_input_channels",
    "__version__",
]
