"""Hardware-support cost model for READ's address LUT (Section IV-D).

Weights are reordered offline, but activations must be fetched in the
reordered sequence at run time — and different output-channel clusters use
different sequences.  The paper's fix is an address look-up table in front
of the IFMAP buffer: a counter walks the LUT, the LUT emits the reordered
activation address.

This module sizes that LUT and compares it to the on-chip buffer so the
paper's "negligible overhead" claim (< 2 KB for a 1024-channel layer vs.
2-64 MB of on-chip SRAM) can be checked quantitatively, and so example
scripts can report per-layer overheads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError


def address_bits(n_entries: int) -> int:
    """Bits needed to address ``n_entries`` distinct items (>= 1)."""
    if n_entries < 1:
        raise ConfigurationError("n_entries must be >= 1")
    return max(1, math.ceil(math.log2(n_entries)))


@dataclass(frozen=True)
class LutCostModel:
    """Size/energy model of the activation-address LUT.

    Parameters
    ----------
    bytes_per_bit_area_um2:
        SRAM area density surrogate (um^2 per bit), used only for
        relative reporting.
    sram_read_energy_pj_per_bit:
        Read energy surrogate for the LUT accesses.
    """

    bytes_per_bit_area_um2: float = 0.07
    sram_read_energy_pj_per_bit: float = 0.008

    def lut_bits(self, n_channels: int, n_clusters: int = 1, shared: bool = True) -> int:
        """Total LUT storage in bits.

        Each entry holds one channel address (``ceil(log2(C))`` bits); one
        table of ``C`` entries per *concurrently active* sequence.  With
        ``shared=True`` (default) clusters are processed sequentially on
        the array, so a single table is reloaded per cluster alongside the
        weights — this is the configuration behind the paper's "< 2 KB for
        1024 channels" figure.  ``shared=False`` sizes fully resident
        per-cluster tables.
        """
        if n_channels < 1 or n_clusters < 1:
            raise ConfigurationError("n_channels and n_clusters must be >= 1")
        entry_bits = address_bits(n_channels)
        tables = 1 if shared else n_clusters
        return n_channels * entry_bits * tables

    def lut_bytes(self, n_channels: int, n_clusters: int = 1, shared: bool = True) -> float:
        """LUT storage in bytes (see :meth:`lut_bits`)."""
        return self.lut_bits(n_channels, n_clusters, shared) / 8.0

    def area_um2(self, n_channels: int, n_clusters: int = 1, shared: bool = True) -> float:
        """Area surrogate for relative comparisons."""
        return self.lut_bits(n_channels, n_clusters, shared) * self.bytes_per_bit_area_um2

    def relative_overhead(
        self,
        n_channels: int,
        buffer_bytes: float,
        n_clusters: int = 1,
        shared: bool = True,
    ) -> float:
        """LUT bytes as a fraction of the on-chip activation buffer."""
        if buffer_bytes <= 0:
            raise ConfigurationError("buffer_bytes must be positive")
        return self.lut_bytes(n_channels, n_clusters, shared) / buffer_bytes

    def access_energy_pj(self, n_channels: int) -> float:
        """Energy of one full pass over the LUT (one per output tile)."""
        return self.lut_bits(n_channels) * self.sram_read_energy_pj_per_bit
