"""Per-layer deployment optimizer: strategy selection under a LUT budget.

A practical extension of the paper's flow: cluster-then-reorder needs an
activation-address LUT per layer, and a deployment may cap the total LUT
storage.  Given the measured per-layer TERs of every strategy (from
:func:`repro.experiments.common.measure_layer_ters` or any equivalent
table), pick for each layer the strategy that minimizes the *network
error exposure* — the expected number of corrupted output activations,
``sum_l BER_l(strategy_l) * outputs_l`` — subject to the LUT budget.

The baseline strategy needs no LUT; reorder needs a single shared table
(weights reordered offline, one activation order for the whole layer is
NOT sufficient when groups differ, so reorder is charged one table as
well by default — the conservative model of Section IV-D).  Greedy
selection by exposure-reduction per LUT byte is optimal here because the
per-layer choices are independent and costs are additive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigurationError
from ..faults.ber import ber_from_ter
from .lut import LutCostModel
from .pipeline import MappingStrategy


@dataclass(frozen=True)
class LayerChoice:
    """One layer's strategy candidates and the eventual pick."""

    layer: str
    strategy: MappingStrategy
    ter: float
    exposure: float       # expected corrupted outputs per inference
    lut_bytes: float


@dataclass(frozen=True)
class DeploymentPlan:
    """Outcome of the budgeted optimization."""

    choices: List[LayerChoice]
    total_lut_bytes: float
    total_exposure: float
    baseline_exposure: float

    @property
    def exposure_reduction(self) -> float:
        """Factor by which the expected error count dropped."""
        if self.total_exposure <= 0:
            return float("inf")
        return self.baseline_exposure / self.total_exposure

    def strategy_for(self, layer: str) -> MappingStrategy:
        for choice in self.choices:
            if choice.layer == layer:
                return choice.strategy
        raise ConfigurationError(f"unknown layer {layer!r}")


def optimize_deployment(
    layer_ters: Dict[str, Dict[str, float]],
    n_macs: Dict[str, int],
    n_outputs: Dict[str, int],
    lut_budget_bytes: float,
    lut_model: Optional[LutCostModel] = None,
) -> DeploymentPlan:
    """Choose a per-layer strategy mix under a total LUT budget.

    Parameters
    ----------
    layer_ters:
        ``{layer: {strategy_value: ter}}`` — must include ``"baseline"``
        for every layer; other strategies are optional candidates.
    n_macs / n_outputs:
        Per-layer reduction length (Eq. 1's N) and output activation
        count per inference.
    lut_budget_bytes:
        Total activation-LUT storage available across layers.
    """
    if lut_budget_bytes < 0:
        raise ConfigurationError("lut_budget_bytes must be non-negative")
    lut_model = lut_model or LutCostModel()

    def exposure(layer: str, ter: float) -> float:
        return float(ber_from_ter(ter, n_macs[layer])) * n_outputs[layer]

    # start everyone at baseline (free), then greedily spend budget on the
    # best exposure-reduction-per-byte upgrades
    current: Dict[str, LayerChoice] = {}
    for layer, table in layer_ters.items():
        if "baseline" not in table:
            raise ConfigurationError(f"layer {layer}: missing baseline TER")
        if layer not in n_macs or layer not in n_outputs:
            raise ConfigurationError(f"layer {layer}: missing shape information")
        current[layer] = LayerChoice(
            layer=layer,
            strategy=MappingStrategy.BASELINE,
            ter=table["baseline"],
            exposure=exposure(layer, table["baseline"]),
            lut_bytes=0.0,
        )
    baseline_exposure = sum(c.exposure for c in current.values())

    spent = 0.0
    while True:
        best_gain_rate = 0.0
        best: Optional[LayerChoice] = None
        for layer, table in layer_ters.items():
            cost = lut_model.lut_bytes(n_macs[layer])
            extra = cost - current[layer].lut_bytes
            if spent + extra > lut_budget_bytes:
                continue
            for name, ter in table.items():
                strategy = MappingStrategy.from_name(name)
                if strategy is MappingStrategy.BASELINE:
                    continue
                gain = current[layer].exposure - exposure(layer, ter)
                rate = gain / max(extra, 1e-9)
                if gain > 0 and rate > best_gain_rate:
                    best_gain_rate = rate
                    best = LayerChoice(
                        layer=layer,
                        strategy=strategy,
                        ter=ter,
                        exposure=exposure(layer, ter),
                        lut_bytes=cost,
                    )
        if best is None:
            break
        spent += best.lut_bytes - current[best.layer].lut_bytes
        current[best.layer] = best

    choices = [current[layer] for layer in layer_ters]
    return DeploymentPlan(
        choices=choices,
        total_lut_bytes=sum(c.lut_bytes for c in choices),
        total_exposure=sum(c.exposure for c in choices),
        baseline_exposure=baseline_exposure,
    )
