"""READ's primary contribution: critical-input-pattern reduction.

Sign-flip metrics (Section IV-A), Algorithm 1 input-channel reordering
(Section IV-B), balanced output-channel clustering (Section IV-C), the
address-LUT hardware cost model (Section IV-D) and layer/network mapping
plans that compose them.
"""

from .clustering import (
    BalancedSignClusterer,
    ClusteringHistory,
    ClusteringResult,
    clustering_objective,
    contiguous_clusters,
    sign_difference,
    submatrix_sign_difference,
)
from .lut import LutCostModel, address_bits
from .pipeline import (
    LayerMappingPlan,
    MappingStrategy,
    NetworkMappingPlan,
    check_clustering_request,
    plan_layer,
    plan_network,
)
from .optimizer import DeploymentPlan, LayerChoice, optimize_deployment
from .serialize import (
    network_plan_from_json,
    network_plan_to_json,
    plan_from_dict,
    plan_to_dict,
)
from .reorder import (
    CRITERIA,
    ReorderResult,
    channel_magnitude_metric,
    channel_sign_metric,
    nonnegative_ratio_by_quantile,
    optimal_single_channel_order,
    reorder_groups,
    segment_matrix,
    sort_input_channels,
    top_fraction_nonnegative_ratio,
)
from .signflip import (
    conv1d_sign_flips,
    count_sign_flips,
    is_rise_then_fall,
    matrix_sign_flips,
    minimum_sign_flips,
    paper_sign,
    prefix_sums,
    sign_flip_rate,
)

__all__ = [
    "BalancedSignClusterer",
    "CRITERIA",
    "DeploymentPlan",
    "LayerChoice",
    "ClusteringHistory",
    "ClusteringResult",
    "LayerMappingPlan",
    "LutCostModel",
    "MappingStrategy",
    "NetworkMappingPlan",
    "ReorderResult",
    "address_bits",
    "channel_magnitude_metric",
    "channel_sign_metric",
    "clustering_objective",
    "contiguous_clusters",
    "conv1d_sign_flips",
    "count_sign_flips",
    "is_rise_then_fall",
    "matrix_sign_flips",
    "minimum_sign_flips",
    "network_plan_from_json",
    "network_plan_to_json",
    "nonnegative_ratio_by_quantile",
    "optimal_single_channel_order",
    "optimize_deployment",
    "paper_sign",
    "plan_from_dict",
    "check_clustering_request",
    "plan_layer",
    "plan_network",
    "plan_to_dict",
    "prefix_sums",
    "reorder_groups",
    "segment_matrix",
    "sign_difference",
    "sign_flip_rate",
    "sort_input_channels",
    "submatrix_sign_difference",
    "top_fraction_nonnegative_ratio",
]
