"""Sign-flip metrics of partial-sum accumulation (paper Section IV-A).

READ's objective is the number of PSUM sign-bit flips during a
convolution's accumulation:

    SF = sum_j  sign(prefix_j)  XOR  sign(prefix_{j+1})

where ``prefix_j`` is the running sum after j products and ``sign(.)``
follows the paper's convention (1 for non-negative, 0 for negative).  The
PSUM register initializes to 0, so the flip count equals the number of
sign changes along the sequence ``[0, prefix_1, ..., prefix_C]`` — which
is also exactly what the hardware sign bit does.

Two theoretical facts from the paper are encoded here and property-tested:

* **Compute correctness** — any permutation of the products leaves the
  final sum unchanged.
* **Sign-flip optimality** — with non-negative inputs, computing all
  non-negative-weight products first yields 0 flips when the output is
  non-negative and exactly 1 when it is negative (the attainable minimum).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..hw import fixedpoint as fp


def paper_sign(values) -> np.ndarray:
    """The paper's ``sign(.)``: 1 for non-negative inputs, 0 for negative."""
    return (np.asarray(values) >= 0).astype(np.int64)


def prefix_sums(products, width: int | None = None, initial: int = 0) -> np.ndarray:
    """Running PSUM values after each product, along the last axis.

    With ``width`` given, the prefix wraps into a two's-complement register
    of that width (the hardware behaviour); otherwise exact integers are
    used (the algorithmic idealization — identical unless the accumulator
    overflows, which the 24-bit register makes impossible for <= 256
    int8*uint8 products).
    """
    prefix = np.cumsum(np.asarray(products, dtype=np.int64), axis=-1) + np.int64(initial)
    if width is not None:
        prefix = fp.wrap(prefix, width)
    return prefix


def count_sign_flips(products, width: int | None = None, initial: int = 0) -> np.ndarray:
    """Number of PSUM sign flips per accumulation (last axis = cycles).

    >>> int(count_sign_flips([-3, 21, -10, 4]))   # 0,-3,18,8,12: one dip
    2
    """
    products = np.asarray(products, dtype=np.int64)
    if products.shape[-1] == 0:
        raise ShapeError("need at least one product to accumulate")
    prefix = prefix_sums(products, width=width, initial=initial)
    signs = paper_sign(prefix)
    init_sign = paper_sign(np.asarray(initial))
    first_flip = signs[..., 0] ^ init_sign
    later_flips = signs[..., 1:] ^ signs[..., :-1]
    return first_flip + later_flips.sum(axis=-1)


def minimum_sign_flips(final_values) -> np.ndarray:
    """Attainable minimum flips given the final output value (Section IV-A).

    0 if the output activation is non-negative, else 1 (PSUM starts at 0
    and must end negative).
    """
    return (np.asarray(final_values) < 0).astype(np.int64)


def sign_flip_rate(products, width: int | None = None) -> float:
    """Sign flips per cycle over a batch of accumulations (Fig. 2 x-axis)."""
    products = np.asarray(products, dtype=np.int64)
    total = count_sign_flips(products, width=width).sum()
    return float(total) / products.size


def is_rise_then_fall(products) -> np.ndarray:
    """Check the reordered-PSUM shape property (Section IV-A).

    With non-negative inputs and non-negative-weight products first, the
    PSUM trajectory is non-decreasing then non-increasing.  Returns a
    boolean per accumulation.
    """
    prefix = prefix_sums(products)
    steps = np.diff(np.concatenate([np.zeros(prefix.shape[:-1] + (1,), dtype=np.int64), prefix], axis=-1), axis=-1)
    rising = steps >= 0
    # once a negative step occurs, all subsequent steps must be <= 0
    seen_fall = np.cumsum(~rising, axis=-1) > 0
    violation = seen_fall & (steps > 0)
    return ~violation.any(axis=-1)


def conv1d_sign_flips(acts, weights, order=None, width: int | None = None) -> int:
    """Sign flips of a single 1-D convolution computed in a given order.

    This is the paper's Fig. 3 scenario: one output activation computed as
    ``sum_i acts[i] * weights[i]`` in the order given by ``order`` (default:
    natural order).

    >>> conv1d_sign_flips([3, 3, 2, 1], [-1, 7, -5, 4])
    4
    >>> conv1d_sign_flips([3, 3, 2, 1], [-1, 7, -5, 4], order=[3, 1, 2, 0])
    2
    """
    acts = np.asarray(acts, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    if acts.shape != weights.shape:
        raise ShapeError(f"acts {acts.shape} and weights {weights.shape} must match")
    if order is not None:
        order = np.asarray(order)
        acts = acts[..., order]
        weights = weights[..., order]
    return int(count_sign_flips(acts * weights, width=width))


def matrix_sign_flips(
    act_matrix: np.ndarray,
    weight_matrix: np.ndarray,
    width: int | None = None,
) -> np.ndarray:
    """Sign flips for every (pixel, output-channel) accumulation of a GEMM.

    Parameters
    ----------
    act_matrix:
        Shape ``(n_pixels, C)`` — one row of reduction operands per output
        pixel (im2col layout).
    weight_matrix:
        Shape ``(C, K)`` — one column per output channel.

    Returns
    -------
    Array of shape ``(n_pixels, K)`` with the flip count of each output
    activation's accumulation, in the *given* row order of the matrices.
    """
    act_matrix = np.asarray(act_matrix, dtype=np.int64)
    weight_matrix = np.asarray(weight_matrix, dtype=np.int64)
    if act_matrix.ndim != 2 or weight_matrix.ndim != 2:
        raise ShapeError("act_matrix and weight_matrix must be 2-D")
    if act_matrix.shape[1] != weight_matrix.shape[0]:
        raise ShapeError(
            f"reduction dims differ: acts {act_matrix.shape} vs weights {weight_matrix.shape}"
        )
    # products[p, c, k] accumulated over c
    products = act_matrix[:, :, None] * weight_matrix[None, :, :]
    products = np.swapaxes(products, 1, 2)  # (pixels, K, C): cycles last
    return count_sign_flips(products, width=width)
