"""(De)serialization of READ mapping plans.

A mapping plan is deployment state: the reordered weight layout is baked
into the weight binary and the per-cluster input orders are written into
the accelerator's address LUT at load time.  This module round-trips
:class:`~repro.core.pipeline.LayerMappingPlan` and
:class:`~repro.core.pipeline.NetworkMappingPlan` through plain JSON (no
pickle — the artifact crosses trust boundaries), so a plan computed once
at deployment-preparation time can be shipped next to the model.

Weights themselves are *not* serialized — the plan stores the column
groups and input orders, and :func:`plan_from_dict` re-slices the weight
matrices the caller supplies, verifying shape agreement.
"""

from __future__ import annotations

import json
from typing import Dict

import numpy as np

from ..errors import ConfigurationError, ShapeError
from .pipeline import LayerMappingPlan, MappingStrategy, NetworkMappingPlan
from .reorder import ReorderResult

#: Format marker for forward compatibility.
FORMAT_VERSION = 1


def plan_to_dict(plan: LayerMappingPlan) -> dict:
    """JSON-safe dictionary of one layer plan (orders + groups only)."""
    return {
        "version": FORMAT_VERSION,
        "strategy": plan.strategy.value,
        "criteria": plan.criteria,
        "n_input_channels": plan.n_input_channels,
        "n_output_channels": plan.n_output_channels,
        "groups": [
            {"columns": g.columns.tolist(), "order": g.order.tolist()}
            for g in plan.groups
        ],
    }


def plan_from_dict(data: dict, weights: np.ndarray) -> LayerMappingPlan:
    """Rebuild a layer plan against the weight matrix it was made for."""
    if data.get("version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported plan format version {data.get('version')!r}"
        )
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ShapeError("weights must be a 2-D (C_eff, K) matrix")
    c_eff, k = weights.shape
    if (c_eff, k) != (data["n_input_channels"], data["n_output_channels"]):
        raise ShapeError(
            f"plan was built for {data['n_input_channels']}x"
            f"{data['n_output_channels']}, got {c_eff}x{k}"
        )
    groups = []
    seen_cols: set = set()
    for entry in data["groups"]:
        columns = np.asarray(entry["columns"], dtype=np.int64)
        order = np.asarray(entry["order"], dtype=np.int64)
        if sorted(order.tolist()) != list(range(c_eff)):
            raise ConfigurationError("group order is not a permutation of channels")
        if np.any((columns < 0) | (columns >= k)):
            raise ConfigurationError("group columns out of range")
        overlap = seen_cols.intersection(columns.tolist())
        if overlap:
            raise ConfigurationError(f"columns {sorted(overlap)} appear in two groups")
        seen_cols.update(columns.tolist())
        groups.append(
            ReorderResult(columns=columns, order=order, weights=weights[order][:, columns])
        )
    if len(seen_cols) != k:
        raise ConfigurationError("groups do not cover every output channel")
    return LayerMappingPlan(
        strategy=MappingStrategy.from_name(data["strategy"]),
        groups=groups,
        n_input_channels=c_eff,
        n_output_channels=k,
        criteria=data["criteria"],
        clustering=None,  # history is not part of the deployment artifact
    )


def network_plan_to_json(plan: NetworkMappingPlan) -> str:
    """Serialize a whole-network plan to a JSON string."""
    payload = {
        "version": FORMAT_VERSION,
        "layers": {name: plan_to_dict(p) for name, p in plan.layers.items()},
        "incoming_permutations": {
            name: perm.tolist() for name, perm in plan.incoming_permutations.items()
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def network_plan_from_json(
    text: str, layer_weights: Dict[str, np.ndarray]
) -> NetworkMappingPlan:
    """Rebuild a network plan against the layer weight matrices.

    ``layer_weights`` must contain exactly the serialized layers, each in
    the *propagated* row order the plan was built on (the order
    :func:`repro.core.pipeline.plan_network` applies internally).
    """
    payload = json.loads(text)
    if payload.get("version") != FORMAT_VERSION:
        raise ConfigurationError("unsupported network plan format version")
    if set(payload["layers"]) != set(layer_weights):
        raise ConfigurationError(
            f"layer sets differ: plan has {sorted(payload['layers'])}, "
            f"weights have {sorted(layer_weights)}"
        )
    layers = {
        name: plan_from_dict(entry, layer_weights[name])
        for name, entry in payload["layers"].items()
    }
    incoming = {
        name: np.asarray(perm, dtype=np.int64)
        for name, perm in payload["incoming_permutations"].items()
    }
    return NetworkMappingPlan(layers=layers, incoming_permutations=incoming)
