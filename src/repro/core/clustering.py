"""Output-channel clustering (paper Section IV-C, Problem 2).

Before segmenting the weight matrix into array-width column groups,
cluster the output channels so that channels sharing similar weight-sign
structure are streamed together — they then admit a common input-channel
order with few residual sign flips.

The paper defines the *sign difference* between two output channels as
the Manhattan distance between their weight sign vectors, the cluster
cost as the sum of pairwise sign differences within each cluster, and
requires hard-balanced clusters (every cluster exactly the array width,
since each maps to a physical column group).  It solves this with a
balanced KNN-style iteration on the sign matrix; we implement a balanced
k-medians (Manhattan metric) with greedy balanced assignment, which is
the standard proven approach for this problem class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..errors import ConfigurationError, ShapeError
from .signflip import paper_sign


def sign_difference(x: np.ndarray, y: np.ndarray) -> int:
    """Manhattan distance between the sign vectors of two channels (SD)."""
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape != y.shape:
        raise ShapeError(f"sign vectors must match: {x.shape} vs {y.shape}")
    return int(np.abs(paper_sign(x) - paper_sign(y)).sum())


def submatrix_sign_difference(weights: np.ndarray) -> int:
    """Sum of pairwise sign differences between the columns of a sub-matrix.

    This is ``SD(W_Ti)`` in Problem 2; lower means the columns agree on
    which input channels carry non-negative weights, hence reorder better.
    """
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ShapeError("expected a 2-D (C, group) sub-matrix")
    signs = paper_sign(weights).astype(np.float64)  # (C, m)
    m = signs.shape[1]
    if m < 2:
        return 0
    # sum_{i<j} sum_c |s_ci - s_cj|; per row c with k ones among m entries
    # the pairwise L1 sum is k*(m-k).
    ones = signs.sum(axis=1)
    return int((ones * (m - ones)).sum())


def clustering_objective(weights: np.ndarray, clusters: List[np.ndarray]) -> int:
    """Problem 2 objective: total intra-cluster sign difference."""
    weights = np.asarray(weights)
    return sum(submatrix_sign_difference(weights[:, np.asarray(c)]) for c in clusters)


@dataclass
class ClusteringHistory:
    """Per-iteration convergence record (drives Fig. 5(d))."""

    objective: List[int] = field(default_factory=list)
    moved: List[int] = field(default_factory=list)

    @property
    def n_iterations(self) -> int:
        return len(self.objective)


@dataclass(frozen=True)
class ClusteringResult:
    """Final clusters plus the convergence history.

    ``clusters[i]`` holds the original output-channel indices assigned to
    cluster ``i``; concatenating them yields the output-channel
    permutation applied to the layer.
    """

    clusters: List[np.ndarray]
    history: ClusteringHistory
    objective: int

    def permutation(self) -> np.ndarray:
        """Output-channel permutation implied by the cluster order."""
        return np.concatenate(self.clusters)


class BalancedSignClusterer:
    """Hard-balanced clustering of output channels by weight sign.

    Parameters
    ----------
    cluster_size:
        Number of output channels per cluster (the array-column group
        width; Fig. 7 sweeps this from 4 to 32).
    max_iterations:
        Upper bound on the assign/update iterations.
    seed:
        Seed for the k-means++-style centroid initialization.

    Notes
    -----
    Assignment is *greedy balanced*: channels are visited in order of how
    strongly they prefer their best centroid (largest regret between best
    and second-best open cluster) and placed into the nearest cluster with
    remaining capacity.  Centroids are coordinate-wise medians, optimal
    for the Manhattan metric.  The objective is monitored every iteration
    and the best assignment seen is returned, so the result never degrades
    with more iterations.
    """

    def __init__(
        self,
        cluster_size: int,
        max_iterations: int = 30,
        seed: int = 0,
        swap_refinement: bool = True,
    ) -> None:
        if cluster_size < 1:
            raise ConfigurationError("cluster_size must be >= 1")
        if max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        self.cluster_size = cluster_size
        self.max_iterations = max_iterations
        self.seed = seed
        self.swap_refinement = swap_refinement

    # ------------------------------------------------------------------ #
    def fit(self, weights: np.ndarray) -> ClusteringResult:
        """Cluster the columns of a ``(C, K)`` weight matrix.

        ``K`` must be divisible by ``cluster_size`` — a hardware
        requirement (each cluster fills a column group); pad the layer's
        output channels first if needed.
        """
        weights = np.asarray(weights)
        if weights.ndim != 2:
            raise ShapeError("fit expects a 2-D (C, K) weight matrix")
        c_dim, k = weights.shape
        if k % self.cluster_size != 0:
            raise ConfigurationError(
                f"K={k} not divisible by cluster_size={self.cluster_size}"
            )
        n_clusters = k // self.cluster_size
        signs = paper_sign(weights).astype(np.float64).T  # (K, C) sign vectors

        rng = np.random.default_rng(self.seed)
        centroids = self._init_centroids(signs, n_clusters, rng)
        pair_dist = self._pairwise_distances(signs)

        history = ClusteringHistory()
        best_assignment: np.ndarray | None = None
        best_objective = np.inf
        prev_assignment = None

        for _iteration in range(self.max_iterations):
            assignment = self._balanced_assign(signs, centroids)
            if self.swap_refinement:
                assignment = self._refine_swaps(
                    assignment, pair_dist, n_clusters, budget=2 * k
                )
            clusters = [np.flatnonzero(assignment == i) for i in range(n_clusters)]
            objective = clustering_objective(weights, clusters)
            moved = (
                int((assignment != prev_assignment).sum())
                if prev_assignment is not None
                else k
            )
            history.objective.append(objective)
            history.moved.append(moved)
            if objective < best_objective:
                best_objective = objective
                best_assignment = assignment
            if prev_assignment is not None and moved == 0:
                break
            prev_assignment = assignment
            centroids = np.stack(
                [np.median(signs[cl], axis=0) for cl in clusters], axis=0
            )

        assert best_assignment is not None
        best_clusters = [np.flatnonzero(best_assignment == i) for i in range(n_clusters)]
        return ClusteringResult(
            clusters=best_clusters, history=history, objective=int(best_objective)
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _pairwise_distances(signs: np.ndarray) -> np.ndarray:
        """K x K Manhattan distance matrix between binary sign vectors."""
        # |a - b| for binary vectors: a(1-b) + (1-a)b
        return signs @ (1.0 - signs.T) + (1.0 - signs) @ signs.T

    def _refine_swaps(
        self,
        assignment: np.ndarray,
        pair_dist: np.ndarray,
        n_clusters: int,
        budget: int = 30,
    ) -> np.ndarray:
        """Hill-climb pairwise swaps between clusters (keeps balance).

        Swapping channel i (cluster A) with channel j (cluster B) changes
        the Problem 2 objective by

            delta = cost(j, A) + cost(i, B) - cost(i, A) - cost(j, B)
                    - 2 * d(i, j)

        where ``cost(x, T)`` is x's summed distance to cluster T's
        members.  Each pass applies the single best improving swap per
        channel pair set; passes repeat until no improving swap exists or
        the budget is exhausted.  Balance is preserved by construction.
        """
        assignment = assignment.copy()
        k = assignment.shape[0]
        onehot = np.zeros((k, n_clusters))
        onehot[np.arange(k), assignment] = 1.0
        for _ in range(max(1, budget)):
            cost = pair_dist @ onehot  # cost[x, T] = sum_{y in T} d(x, y)
            own = cost[np.arange(k), assignment]
            cost_in_others = cost[:, assignment]  # [x, i] = cost(x, cluster(i))
            # delta[i, j]: cost(j,A) + cost(i,B) - cost(i,A) - cost(j,B) - 2 d(i,j)
            delta = (
                cost_in_others.T + cost_in_others - own[:, None] - own[None, :]
                - 2.0 * pair_dist
            )
            # only cross-cluster pairs are meaningful
            same = assignment[:, None] == assignment[None, :]
            delta[same] = 0.0
            i, j = np.unravel_index(np.argmin(delta), delta.shape)
            if delta[i, j] >= -1e-9:
                break
            ai, aj = assignment[i], assignment[j]
            assignment[i], assignment[j] = aj, ai
            onehot[i, ai] = 0.0
            onehot[i, aj] = 1.0
            onehot[j, aj] = 0.0
            onehot[j, ai] = 1.0
        return assignment

    # ------------------------------------------------------------------ #
    def _init_centroids(
        self, signs: np.ndarray, n_clusters: int, rng: np.random.Generator
    ) -> np.ndarray:
        """k-means++-style spread initialization under the Manhattan metric."""
        k = signs.shape[0]
        first = int(rng.integers(k))
        chosen = [first]
        dists = np.abs(signs - signs[first]).sum(axis=1)
        for _ in range(1, n_clusters):
            total = dists.sum()
            if total <= 0:
                chosen.append(int(rng.integers(k)))
            else:
                probs = dists / total
                chosen.append(int(rng.choice(k, p=probs)))
            dists = np.minimum(dists, np.abs(signs - signs[chosen[-1]]).sum(axis=1))
        return signs[np.asarray(chosen)].copy()

    def _balanced_assign(self, signs: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Greedy balanced assignment: biggest-regret channels pick first."""
        k = signs.shape[0]
        n_clusters = centroids.shape[0]
        capacity = np.full(n_clusters, self.cluster_size, dtype=np.int64)
        # distance matrix (K, n_clusters) under Manhattan metric
        dist = np.abs(signs[:, None, :] - centroids[None, :, :]).sum(axis=2)
        order_regret = np.sort(dist, axis=1)
        regret = (
            order_regret[:, 1] - order_regret[:, 0]
            if n_clusters > 1
            else np.zeros(k)
        )
        assignment = np.full(k, -1, dtype=np.int64)
        for idx in np.argsort(-regret, kind="stable"):
            ranked = np.argsort(dist[idx], kind="stable")
            for cluster in ranked:
                if capacity[cluster] > 0:
                    assignment[idx] = cluster
                    capacity[cluster] -= 1
                    break
        assert np.all(assignment >= 0)
        return assignment


def contiguous_clusters(n_channels: int, cluster_size: int) -> List[np.ndarray]:
    """Baseline grouping: consecutive chunks in the original channel order.

    This is what direct segmentation (no clustering) produces; used by the
    plain-reorder strategy and as the clustering ablation baseline.
    """
    if cluster_size < 1:
        raise ConfigurationError("cluster_size must be >= 1")
    idx = np.arange(n_channels)
    return [idx[i : i + cluster_size] for i in range(0, n_channels, cluster_size)]
