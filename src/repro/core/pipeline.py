"""Layer- and network-level READ mapping plans.

Ties the pieces together:

* :class:`MappingStrategy` — baseline / reorder / cluster-then-reorder.
* :class:`LayerMappingPlan` — for one layer's ``(C_eff, K)`` weight
  matrix, the output-channel grouping and the per-group input-channel
  sequences, plus application helpers for weights and activations and the
  LUT cost.
* :func:`plan_network` — per-layer plans for a whole network with the
  cross-layer permutation bookkeeping of Section IV-D: the output-channel
  order chosen for layer *l* permutes the channel axis that layer *l+1*
  reads, so layer *l+1*'s plan is built on its accordingly-permuted weight
  matrix (the channel-permutation composition of ref. [24]).

Everything here is pure bookkeeping — no value ever changes, only the
order of MAC operations — which is the paper's compute-correctness
property and is enforced by the integration tests.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import (
    ConfigurationError,
    MappingError,
    MappingFallbackWarning,
    ShapeError,
    unknown_name_error,
)
from .clustering import BalancedSignClusterer, ClusteringResult, contiguous_clusters
from .lut import LutCostModel
from .reorder import ReorderResult, reorder_groups


class MappingStrategy(enum.Enum):
    """The three computation-sequence strategies compared in the paper."""

    BASELINE = "baseline"
    REORDER = "reorder"
    CLUSTER_THEN_REORDER = "cluster_then_reorder"

    @classmethod
    def from_name(cls, name: str) -> "MappingStrategy":
        for member in cls:
            if member.value == name or member.name.lower() == name.lower():
                return member
        raise unknown_name_error("strategy", name, [m.value for m in cls])


@dataclass(frozen=True)
class LayerMappingPlan:
    """The computation sequence for one layer on the accelerator.

    Attributes
    ----------
    strategy:
        Which READ variant produced the plan.
    groups:
        One :class:`ReorderResult` per output-channel group, in streaming
        order.  For the baseline the per-group order is the identity.
    n_input_channels / n_output_channels:
        Dimensions of the planned ``(C_eff, K)`` matrix.
    clustering:
        The clustering result when strategy is cluster-then-reorder.
    """

    strategy: MappingStrategy
    groups: List[ReorderResult]
    n_input_channels: int
    n_output_channels: int
    criteria: str = "sign_first"
    clustering: Optional[ClusteringResult] = None

    # -------------------------------------------------------------- #
    def output_channel_permutation(self) -> np.ndarray:
        """Order in which output channels are produced by the plan."""
        return np.concatenate([g.columns for g in self.groups])

    def input_orders(self) -> List[np.ndarray]:
        """Per-group input-channel sequences (the LUT contents)."""
        return [g.order for g in self.groups]

    def reordered_weights(self) -> List[np.ndarray]:
        """Per-group weight sub-matrices as streamed to the array."""
        return [g.weights for g in self.groups]

    def apply_to_activations(self, act_matrix: np.ndarray, group: int) -> np.ndarray:
        """Reorder an im2col activation matrix ``(pixels, C_eff)`` for a group."""
        act_matrix = np.asarray(act_matrix)
        if act_matrix.ndim != 2 or act_matrix.shape[1] != self.n_input_channels:
            raise ShapeError(
                f"activation matrix must be (pixels, {self.n_input_channels}), "
                f"got {act_matrix.shape}"
            )
        return act_matrix[:, self.groups[group].order]

    def lut_bytes(self, model: Optional[LutCostModel] = None) -> float:
        """Size of the activation address LUT supporting this plan."""
        model = model or LutCostModel()
        return model.lut_bytes(self.n_input_channels, n_clusters=len(self.groups))

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.strategy.value}: {self.n_input_channels}x{self.n_output_channels} "
            f"in {len(self.groups)} group(s) of "
            f"{self.groups[0].columns.size if self.groups else 0}"
        )


def check_clustering_request(
    k: int,
    group_size: int,
    strategy: MappingStrategy,
    strict: bool = False,
    stacklevel: int = 2,
) -> None:
    """Diagnose a clustering request that would degrade to segmentation.

    Shared by :func:`plan_layer` and the simulation engine's scheduler
    (which must surface the diagnostic even when the planned result is
    recalled from the cache and no plan is built).  Emits a
    :class:`~repro.errors.MappingFallbackWarning`, or raises
    :class:`~repro.errors.MappingError` with ``strict=True``; a no-op for
    feasible requests and non-clustering strategies.
    """
    if strategy is not MappingStrategy.CLUSTER_THEN_REORDER:
        return
    if k % group_size == 0 and k > group_size:
        return
    reason = (
        f"K={k} is not divisible by group_size={group_size}"
        if k % group_size != 0
        else f"K={k} fits in a single group of {group_size}"
    )
    message = f"cluster_then_reorder cannot form balanced clusters ({reason})"
    if strict:
        raise MappingError(
            f"{message}; pass strict=False to fall back to contiguous segmentation"
        )
    warnings.warn(
        f"{message}; falling back to contiguous segmentation with per-group "
        "reordering (the plan is still labelled cluster_then_reorder)",
        MappingFallbackWarning,
        stacklevel=stacklevel,
    )


def plan_layer(
    weights: np.ndarray,
    group_size: int,
    strategy: MappingStrategy = MappingStrategy.CLUSTER_THEN_REORDER,
    criteria: str = "sign_first",
    cluster_iterations: int = 30,
    seed: int = 0,
    strict: bool = False,
) -> LayerMappingPlan:
    """Build the READ mapping plan for one layer.

    Parameters
    ----------
    weights:
        The layer's lowered weight matrix, shape ``(C_eff, K)`` with
        ``C_eff = C * Fx * Fy`` (Section IV's formulation assumes the 1x1
        case; larger kernels lower to the same GEMM).
    group_size:
        Output channels processed concurrently per array pass — the
        systolic-array column count ``Ac``, or the channels-per-cluster
        sweep value of Fig. 7.
    strategy / criteria:
        READ variant and Algorithm 1 sorting criteria.
    strict:
        A cluster-then-reorder request that cannot form balanced clusters
        (``K`` indivisible by ``group_size``, or a single group) degrades
        to contiguous segmentation + reorder.  By default this emits a
        :class:`~repro.errors.MappingFallbackWarning`; with
        ``strict=True`` it raises :class:`~repro.errors.MappingError`.
    """
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ShapeError("plan_layer expects a 2-D (C_eff, K) weight matrix")
    if isinstance(strategy, str):
        strategy = MappingStrategy.from_name(strategy)
    c_eff, k = weights.shape
    clustering: Optional[ClusteringResult] = None

    check_clustering_request(k, group_size, strategy, strict=strict, stacklevel=3)
    if strategy is MappingStrategy.CLUSTER_THEN_REORDER and k % group_size == 0 and k > group_size:
        clusterer = BalancedSignClusterer(
            cluster_size=group_size, max_iterations=cluster_iterations, seed=seed
        )
        clustering = clusterer.fit(weights)
        groups_cols: Sequence[np.ndarray] = clustering.clusters
    else:
        # baseline/reorder by design; degraded clustering was diagnosed above.
        groups_cols = contiguous_clusters(k, group_size)

    if strategy is MappingStrategy.BASELINE:
        groups = []
        for cols in groups_cols:
            cols = np.asarray(cols)
            groups.append(
                ReorderResult(
                    columns=cols,
                    order=np.arange(c_eff),
                    weights=weights[:, cols],
                )
            )
    else:
        groups = reorder_groups(weights, groups_cols, criteria=criteria)

    return LayerMappingPlan(
        strategy=strategy,
        groups=groups,
        n_input_channels=c_eff,
        n_output_channels=k,
        criteria=criteria,
        clustering=clustering,
    )


@dataclass(frozen=True)
class NetworkMappingPlan:
    """Per-layer plans plus the cross-layer permutation bookkeeping.

    ``incoming_permutations[name]`` records the output-channel order of
    the producing layer — i.e. the permutation along which layer ``name``
    reads its input channel axis from memory (Section IV-D).  The first
    layer reads the unpermuted input image.
    """

    layers: Dict[str, LayerMappingPlan]
    incoming_permutations: Dict[str, np.ndarray]

    def total_lut_bytes(self, model: Optional[LutCostModel] = None) -> float:
        """Sum of activation-LUT storage across all layers."""
        return sum(plan.lut_bytes(model) for plan in self.layers.values())


def plan_network(
    layer_weights: Dict[str, np.ndarray],
    group_size: int,
    strategy: MappingStrategy = MappingStrategy.CLUSTER_THEN_REORDER,
    criteria: str = "sign_first",
    kernel_areas: Optional[Dict[str, int]] = None,
    propagate: bool = True,
    seed: int = 0,
    strict: bool = False,
) -> NetworkMappingPlan:
    """Plan every layer of a sequential network with permutation propagation.

    Parameters
    ----------
    layer_weights:
        Ordered mapping layer-name -> lowered ``(C_eff, K)`` weight
        matrix, in execution order (dict insertion order is used).
    kernel_areas:
        Per-layer ``Fx * Fy`` so the previous layer's K-permutation can be
        expanded along the current layer's lowered C axis (each previous
        output channel contributes ``Fx*Fy`` consecutive rows).  Defaults
        to 1 for every layer (1x1 lowering).
    propagate:
        Apply each layer's output-channel permutation to the next layer's
        input rows before planning it (the paper's scheme).  With False,
        layers are planned independently and activations must instead be
        physically re-permuted between layers.
    strict:
        Forwarded to :func:`plan_layer`: raise instead of warning when a
        clustering request degrades to contiguous segmentation.
    """
    if isinstance(strategy, str):
        strategy = MappingStrategy.from_name(strategy)
    kernel_areas = kernel_areas or {}
    plans: Dict[str, LayerMappingPlan] = {}
    incoming: Dict[str, np.ndarray] = {}
    prev_out_perm: Optional[np.ndarray] = None

    for name, weights in layer_weights.items():
        weights = np.asarray(weights)
        area = int(kernel_areas.get(name, 1))
        c_eff = weights.shape[0]
        if c_eff % area != 0:
            raise ConfigurationError(
                f"layer {name}: C_eff={c_eff} not divisible by kernel area {area}"
            )
        c_channels = c_eff // area

        if propagate and prev_out_perm is not None and prev_out_perm.size == c_channels:
            # expand the previous layer's K-permutation along this layer's
            # lowered C axis: channel c owns rows [c*area, (c+1)*area).
            row_perm = (
                prev_out_perm[:, None] * area + np.arange(area)[None, :]
            ).reshape(-1)
            weights = weights[row_perm]
            incoming[name] = prev_out_perm
        else:
            incoming[name] = np.arange(c_channels)

        plan = plan_layer(
            weights,
            group_size=group_size,
            strategy=strategy,
            criteria=criteria,
            seed=seed,
            strict=strict,
        )
        plans[name] = plan
        prev_out_perm = plan.output_channel_permutation()

    return NetworkMappingPlan(layers=plans, incoming_permutations=incoming)
