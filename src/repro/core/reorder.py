"""Input-channel reordering — the paper's Algorithm 1.

Given the weight sub-matrix streamed through one group of array columns,
choose the order in which input channels are accumulated so that channels
whose weights are (mostly) non-negative come first.  With ReLU inputs the
PSUM then rises before it falls, and the sign-flip count collapses to its
attainable minimum for most output activations.

Two sorting criteria from the paper:

* ``sign_first`` — primary key: number of non-negative weights in the
  channel; tie-break: larger weight sum first.
* ``mag_first``  — primary key: channel weight sum; tie-break: more
  non-negative weights first.

Algorithm 1 implements the tie-break by scaling the secondary metric into
``[0, 1)`` and adding it to the primary metric; we follow that literally
(the primary ``sign`` metric is integral, so a sub-unit secondary can only
break ties).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from ..errors import ConfigurationError, ShapeError
from .signflip import paper_sign

#: Recognized sorting criteria names.
CRITERIA = ("sign_first", "mag_first")


def channel_sign_metric(weights: np.ndarray) -> np.ndarray:
    """Per-input-channel count of non-negative weights.

    ``weights`` has shape ``(C, Ac)`` — rows are input channels, columns
    the output channels streamed together.
    """
    weights = _as_matrix(weights)
    return paper_sign(weights).sum(axis=1).astype(np.float64)


def channel_magnitude_metric(weights: np.ndarray) -> np.ndarray:
    """Per-input-channel sum of weights (Algorithm 1, line 4)."""
    weights = _as_matrix(weights)
    return weights.sum(axis=1).astype(np.float64)


def _as_matrix(weights) -> np.ndarray:
    w = np.asarray(weights)
    if w.ndim == 1:
        w = w[:, None]
    if w.ndim != 2:
        raise ShapeError(f"weight matrix must be 1-D or 2-D, got shape {w.shape}")
    return w


def _scale_unit(values: np.ndarray) -> np.ndarray:
    """Scale values into [0, 1) as Algorithm 1's tie-break term."""
    lo = values.min()
    hi = values.max()
    if hi == lo:
        return np.zeros_like(values, dtype=np.float64)
    return (values - lo) / (hi - lo) * (1.0 - 1e-9)


def sort_input_channels(weights, criteria: str = "sign_first") -> np.ndarray:
    """Algorithm 1: return the input-channel order ``S`` (best channel first).

    Parameters
    ----------
    weights:
        Sub-matrix of shape ``(C, Ac)`` (or a 1-D vector for a single
        output channel).
    criteria:
        ``"sign_first"`` or ``"mag_first"``.

    Returns
    -------
    Permutation array ``S`` of length ``C``: process channel ``S[0]``
    first.  Sorting is descending in the combined metric and stable.
    """
    weights = _as_matrix(weights)
    metric_sign = channel_sign_metric(weights)
    metric_mag = channel_magnitude_metric(weights)
    if criteria == "sign_first":
        metric = metric_sign + _scale_unit(metric_mag)
    elif criteria == "mag_first":
        metric = metric_mag + _scale_unit(metric_sign)
    else:
        raise ConfigurationError(f"criteria must be one of {CRITERIA}, got {criteria!r}")
    return np.argsort(-metric, kind="stable")


def optimal_single_channel_order(weights) -> np.ndarray:
    """Provably flip-minimal order for a single output channel.

    All non-negative weights first (any internal order), then negatives —
    the paper's heuristic is exact for ``Ac = 1``.  Non-negative weights
    are sorted descending and negatives ascending-in-magnitude-last so the
    PSUM peak is reached early (useful for the Fig. 9 visualization).
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise ShapeError("optimal_single_channel_order expects a 1-D weight vector")
    return np.argsort(-w, kind="stable")


def segment_matrix(weights: np.ndarray, group_size: int) -> List[np.ndarray]:
    """Split a ``(C, K)`` weight matrix column-wise into array-width groups.

    The last group may be narrower if ``K`` is not a multiple of
    ``group_size`` (the systolic array simply leaves columns idle).
    """
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ShapeError("segment_matrix expects a 2-D (C, K) matrix")
    if group_size < 1:
        raise ConfigurationError("group_size must be >= 1")
    k = weights.shape[1]
    return [weights[:, i : i + group_size] for i in range(0, k, group_size)]


@dataclass(frozen=True)
class ReorderResult:
    """Outcome of reordering one column group.

    Attributes
    ----------
    columns:
        Indices of the output channels (columns of the original matrix)
        in this group.
    order:
        Input-channel sequence ``S`` for the group.
    weights:
        The reordered sub-matrix ``W[order][:, columns]``.
    """

    columns: np.ndarray
    order: np.ndarray
    weights: np.ndarray


def reorder_groups(
    weights: np.ndarray,
    group_columns: Iterable[Sequence[int]],
    criteria: str = "sign_first",
) -> List[ReorderResult]:
    """Reorder input channels independently for each output-channel group.

    ``group_columns`` is an iterable of column-index collections — e.g.
    contiguous chunks for plain reordering, or cluster memberships from
    :mod:`repro.core.clustering` for cluster-then-reorder.
    """
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ShapeError("reorder_groups expects a 2-D (C, K) matrix")
    results = []
    for cols in group_columns:
        cols = np.asarray(cols, dtype=np.int64)
        if cols.size == 0:
            raise ConfigurationError("empty column group")
        if np.any((cols < 0) | (cols >= weights.shape[1])):
            raise ConfigurationError(f"column indices {cols} out of range")
        sub = weights[:, cols]
        order = sort_input_channels(sub, criteria=criteria)
        results.append(ReorderResult(columns=cols, order=order, weights=sub[order]))
    return results


def nonnegative_ratio_by_quantile(weights: np.ndarray, n_quantiles: int = 100) -> np.ndarray:
    """Fraction of non-negative weights per row-position quantile (Fig. 5).

    Splits the row dimension (input channels, in their current order) into
    ``n_quantiles`` equal bins and returns each bin's non-negative weight
    ratio.  The paper plots this for the initial and reordered matrices to
    show non-negative weights concentrating at the front.
    """
    weights = _as_matrix(weights)
    c = weights.shape[0]
    if n_quantiles < 1:
        raise ConfigurationError("n_quantiles must be >= 1")
    n_quantiles = min(n_quantiles, c)
    bins = np.array_split(np.arange(c), n_quantiles)
    return np.array([paper_sign(weights[idx]).mean() for idx in bins])


def top_fraction_nonnegative_ratio(weights: np.ndarray, fraction: float) -> float:
    """Non-negative ratio of the top ``fraction`` of rows (Fig. 5(d) metric)."""
    weights = _as_matrix(weights)
    if not 0 < fraction <= 1:
        raise ConfigurationError("fraction must be in (0, 1]")
    top = max(1, int(round(weights.shape[0] * fraction)))
    return float(paper_sign(weights[:top]).mean())
