"""Evaluation-network builders: VGG-16, ResNet-18 and ResNet-34.

Same topologies as the paper's evaluation (Section V-A) — 13 conv layers
for VGG-16, 17 for ResNet-18, 33 for ResNet-34 — with a ``width``
multiplier so they train in minutes on a laptop-class CPU instead of
hours on a GPU.  READ's behaviour depends on weight sign statistics and
ReLU non-negativity, both preserved at reduced width; EXPERIMENTS.md
records the widths used for each figure.

The builders return a :class:`ClassifierNetwork`, which also knows how to
enumerate its convolution layers in execution order — the unit of Fig. 8's
layer-wise TER study and of the fault-injection pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from .layers import (
    BasicBlock,
    BatchNorm2d,
    Conv2d,
    EncoderBlock,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    Module,
    PatchExtract,
    ReLU,
    Sequential,
    TokenLinear,
    TokenMean,
)

#: VGG-16 configuration: output channels per conv layer, 'M' = max-pool.
VGG16_LAYOUT = [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M", 512, 512, 512, "M"]

#: Blocks per stage for the two ResNets (stage widths 64/128/256/512).
RESNET_STAGES = {"resnet18": (2, 2, 2, 2), "resnet34": (3, 4, 6, 3)}

#: MobileNet-style layout: (output channels, stride) per depthwise-
#: separable block, after a 3x3 stem (32x32-input variant — strides
#: replace the ImageNet version's aggressive early downsampling).
MOBILENET_LAYOUT = [(64, 1), (128, 2), (128, 1), (256, 2), (256, 1)]


@dataclass(frozen=True)
class ConvLayerInfo:
    """A convolution layer in execution order, for reliability studies."""

    index: int
    name: str
    module: Conv2d

    @property
    def weight(self) -> np.ndarray:
        return self.module.weight.data

    @property
    def kernel_area(self) -> int:
        return self.module.weight.data.shape[2] * self.module.weight.data.shape[3]


class ClassifierNetwork(Module):
    """A classification network = feature extractor + classifier head."""

    def __init__(self, name: str, features: Sequential, head: Sequential) -> None:
        self.name = name
        self.features = features
        self.head = head

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.head.forward(self.features.forward(x))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.features.backward(self.head.backward(grad_out))

    def conv_layers(self, include_shortcuts: bool = False) -> List[ConvLayerInfo]:
        """Convolution layers in execution order.

        Fig. 8 plots layer-wise TER over the *main-path* conv layers
        (1x1 projection shortcuts excluded by default, matching the
        paper's 17 layers for ResNet-18).
        """
        infos: List[ConvLayerInfo] = []
        for module in self.modules():
            if isinstance(module, Conv2d):
                if not include_shortcuts and "shortcut" in module.name:
                    continue
                infos.append(ConvLayerInfo(index=len(infos), name=module.name, module=module))
        return infos


def _scaled(channels: int, width: float) -> int:
    return max(4, int(round(channels * width)))


def build_vgg16(
    n_classes: int = 10,
    width: float = 0.25,
    in_channels: int = 3,
    seed: int = 0,
) -> ClassifierNetwork:
    """VGG-16 (13 conv + classifier) for 32x32 inputs, BN after each conv.

    ``width`` scales every channel count; 0.25 gives a net that trains on
    synthetic CIFAR-scale data in a couple of minutes while keeping the
    paper's depth and channel growth pattern.
    """
    if n_classes < 2:
        raise ConfigurationError("need at least 2 classes")
    rng = np.random.default_rng(seed)
    layers: List[Module] = []
    c_in = in_channels
    conv_idx = 0
    for item in VGG16_LAYOUT:
        if item == "M":
            layers.append(MaxPool2d(2))
            continue
        c_out = _scaled(int(item), width)
        layers.append(
            Conv2d(c_in, c_out, 3, stride=1, padding=1, bias=False, rng=rng,
                   name=f"conv{conv_idx}")
        )
        layers.append(BatchNorm2d(c_out, name=f"bn{conv_idx}"))
        layers.append(ReLU())
        c_in = c_out
        conv_idx += 1
    features = Sequential(layers)
    head = Sequential([Flatten(), Linear(c_in, n_classes, rng=rng, name="fc")])
    return ClassifierNetwork("vgg16", features, head)


def build_resnet(
    variant: str = "resnet18",
    n_classes: int = 10,
    width: float = 0.25,
    in_channels: int = 3,
    seed: int = 0,
) -> ClassifierNetwork:
    """ResNet-18/34 for 32x32 inputs (CIFAR-style stem: 3x3, no max-pool)."""
    if variant not in RESNET_STAGES:
        raise ConfigurationError(f"variant must be one of {sorted(RESNET_STAGES)}")
    rng = np.random.default_rng(seed)
    stage_blocks = RESNET_STAGES[variant]
    widths = [_scaled(c, width) for c in (64, 128, 256, 512)]

    layers: List[Module] = [
        Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=rng, name="conv0"),
        BatchNorm2d(widths[0], name="bn0"),
        ReLU(),
    ]
    c_in = widths[0]
    block_idx = 0
    for stage, (c_out, n_blocks) in enumerate(zip(widths, stage_blocks)):
        for b in range(n_blocks):
            stride = 2 if (stage > 0 and b == 0) else 1
            layers.append(
                BasicBlock(c_in, c_out, stride=stride, rng=rng, name=f"block{block_idx}")
            )
            c_in = c_out
            block_idx += 1
    features = Sequential(layers)
    head = Sequential([GlobalAvgPool(), Linear(c_in, n_classes, rng=rng, name="fc")])
    return ClassifierNetwork(variant, features, head)


def build_mobilenet(
    n_classes: int = 10,
    width: float = 0.25,
    in_channels: int = 3,
    seed: int = 0,
) -> ClassifierNetwork:
    """MobileNet-style depthwise-separable network for 32x32 inputs.

    A 3x3 stem followed by :data:`MOBILENET_LAYOUT` blocks of depthwise
    3x3 (``groups == channels``) + pointwise 1x1 convolutions, BN + ReLU
    after each — the workload family whose per-layer GEMMs are short
    (``Fy*Fx`` for depthwise, ``C`` for pointwise) and therefore exercise
    READ's reordering on reductions very unlike the dense VGG/ResNet
    layers.
    """
    if n_classes < 2:
        raise ConfigurationError("need at least 2 classes")
    rng = np.random.default_rng(seed)
    c_in = _scaled(32, width)
    layers: List[Module] = [
        Conv2d(in_channels, c_in, 3, stride=1, padding=1, bias=False, rng=rng, name="conv0"),
        BatchNorm2d(c_in, name="bn0"),
        ReLU(),
    ]
    for i, (channels, stride) in enumerate(MOBILENET_LAYOUT, start=1):
        c_out = _scaled(channels, width)
        layers += [
            Conv2d(c_in, c_in, 3, stride=stride, padding=1, bias=False,
                   groups=c_in, rng=rng, name=f"dw{i}"),
            BatchNorm2d(c_in, name=f"dw{i}_bn"),
            ReLU(),
            Conv2d(c_in, c_out, 1, stride=1, padding=0, bias=False, rng=rng, name=f"pw{i}"),
            BatchNorm2d(c_out, name=f"pw{i}_bn"),
            ReLU(),
        ]
        c_in = c_out
    features = Sequential(layers)
    head = Sequential([GlobalAvgPool(), Linear(c_in, n_classes, rng=rng, name="fc")])
    return ClassifierNetwork("mobilenet", features, head)


#: Mixer/ViT recipe shape: patch size and encoder depth for 32x32 inputs.
MIXER_PATCH = 8
MIXER_DEPTH = 2


def build_mixer(
    n_classes: int = 10,
    width: float = 0.25,
    in_channels: int = 3,
    seed: int = 0,
) -> ClassifierNetwork:
    """A tiny single-head ViT for 32x32 inputs (the transformer recipe).

    ``PatchExtract(8)`` turns a 32x32 image into 16 tokens, a
    :class:`TokenLinear` embeds them, and :data:`MIXER_DEPTH` pre-norm
    encoder blocks (single-head attention + ReLU MLP) mix them; the head
    mean-pools tokens into a :class:`Linear` classifier.  Every GEMM —
    embed, q/k/v/proj, FFN, and the two runtime activation-activation
    products per block (``QK^T``, ``attention @ V``) — lowers onto the
    systolic array via the quantized matmul path, which is the point:
    attention operand statistics are signed, unlike post-ReLU conv
    activations, so READ-reorder applicability must be measured, not
    assumed.
    """
    if n_classes < 2:
        raise ConfigurationError("need at least 2 classes")
    rng = np.random.default_rng(seed)
    d_in = in_channels * MIXER_PATCH * MIXER_PATCH
    dim = _scaled(128, width)
    layers: List[Module] = [
        PatchExtract(MIXER_PATCH),
        TokenLinear(d_in, dim, rng=rng, name="embed"),
    ]
    for i in range(MIXER_DEPTH):
        layers.append(EncoderBlock(dim, 2 * dim, rng=rng, name=f"block{i}"))
    features = Sequential(layers)
    head = Sequential([TokenMean(), Linear(dim, n_classes, rng=rng, name="fc")])
    return ClassifierNetwork("mixer", features, head)


def build_model(
    name: str,
    n_classes: int = 10,
    width: float = 0.25,
    in_channels: int = 3,
    seed: int = 0,
) -> ClassifierNetwork:
    """Dispatch on model name: ``vgg16`` / ``resnet18`` / ``resnet34`` / ``mobilenet`` / ``mixer``."""
    if name == "vgg16":
        return build_vgg16(n_classes=n_classes, width=width, in_channels=in_channels, seed=seed)
    if name == "mobilenet":
        return build_mobilenet(
            n_classes=n_classes, width=width, in_channels=in_channels, seed=seed
        )
    if name == "mixer":
        return build_mixer(n_classes=n_classes, width=width, in_channels=in_channels, seed=seed)
    if name in RESNET_STAGES:
        return build_resnet(
            variant=name, n_classes=n_classes, width=width, in_channels=in_channels, seed=seed
        )
    raise ConfigurationError(f"unknown model {name!r}")
