"""Reliability-aware training regularizers (the paper's future work).

Section V-B closes with: *"These results suggest that the TER can be
further improved by adjusting the weight matrix according to certain
rules during training."*  This module implements those rules as
differentiable penalties added to the training loss:

* :class:`NegativeWeightPenalty` — pushes conv weights toward the
  non-negative half-space (a hinge on negative values).  Layers with a
  higher non-negative fraction front-load better under Algorithm 1 and
  produce fewer residual sign flips (the paper's own observation about
  which layers reorder well).
* :class:`SignCoherencePenalty` — reduces the *sign difference* between
  output channels (Problem 2's objective) with a smooth surrogate: it
  penalizes the variance of tanh-squashed weights across each input
  channel's row, so channels agree on which inputs carry positive
  weight and cluster-then-reorder groups them losslessly.

Both integrate with :class:`repro.nn.training.Trainer` via the
``regularizer`` argument: the penalty's gradient is accumulated into the
conv-weight gradients after each backward pass.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from ..errors import ConfigurationError
from .layers import Parameter


class WeightRegularizer:
    """Interface: penalty value and gradient for a set of parameters."""

    def penalty_and_grad(self, param: Parameter) -> Tuple[float, np.ndarray]:
        raise NotImplementedError  # pragma: no cover - abstract

    def applies_to(self, param: Parameter) -> bool:
        """Regularize conv/linear weights only (never biases or BN)."""
        return param.name.endswith(".weight") and param.data.ndim >= 2

    def apply(self, parameters: Iterable[Parameter]) -> float:
        """Accumulate gradients in place; return the total penalty."""
        total = 0.0
        for param in parameters:
            if not self.applies_to(param):
                continue
            value, grad = self.penalty_and_grad(param)
            param.grad += grad
            total += value
        return total


class NegativeWeightPenalty(WeightRegularizer):
    """Hinge penalty ``strength * sum(max(-w, 0))`` on each weight tensor.

    Negative weights pay linearly; non-negative weights are free.  Like
    weight decay, the gradient acts per element (``-strength`` on every
    negative entry), nudging the sign distribution toward the
    reorder-friendly regime without forcing a non-negative network
    (which would cost accuracy).  Useful strengths sit near the weight
    decay (1e-4 .. 1e-2).
    """

    def __init__(self, strength: float = 1e-3) -> None:
        if strength < 0:
            raise ConfigurationError("strength must be non-negative")
        self.strength = strength

    def applies_to(self, param: Parameter) -> bool:
        # conv weights only: biasing the classifier's signs would distort
        # the logits, and the MAC datapath under study is the conv GEMM.
        return param.name.endswith(".weight") and param.data.ndim == 4

    def penalty_and_grad(self, param: Parameter) -> Tuple[float, np.ndarray]:
        w = param.data
        negative = w < 0
        value = self.strength * float((-w[negative]).sum())
        grad = np.where(negative, -self.strength, 0.0)
        return value, grad


class SignCoherencePenalty(WeightRegularizer):
    """Smooth surrogate of Problem 2's sign-difference objective.

    For a conv weight ``(K, C, Fy, Fx)`` viewed as sign vectors per
    output channel, the penalty is the variance across K of
    ``tanh(w / tau)`` at every (input-channel, tap) position, averaged.
    Zero variance means all output channels agree on each position's
    sign — the clustering objective's global optimum.
    """

    def __init__(self, strength: float = 1e-3, tau: float = 0.05) -> None:
        if strength < 0:
            raise ConfigurationError("strength must be non-negative")
        if tau <= 0:
            raise ConfigurationError("tau must be positive")
        self.strength = strength
        self.tau = tau

    def applies_to(self, param: Parameter) -> bool:
        return param.name.endswith(".weight") and param.data.ndim == 4

    def penalty_and_grad(self, param: Parameter) -> Tuple[float, np.ndarray]:
        w = param.data
        k = w.shape[0]
        if k < 2:
            return 0.0, np.zeros_like(w)
        s = np.tanh(w / self.tau)                       # squashed signs
        mean = s.mean(axis=0, keepdims=True)            # per-position mean over K
        centered = s - mean
        value = self.strength * float((centered**2).sum()) / k
        # d/dw [ sum_k (s_k - mean)^2 / K ] = 2 (s_j - mean) s'(w_j) / K
        # (the -mean term's contribution cancels: sum_k (s_k - mean) = 0)
        ds = (1.0 - s**2) / self.tau
        grad = self.strength * 2.0 * centered * ds / k
        return value, grad


class CompositeRegularizer(WeightRegularizer):
    """Sum of regularizers (e.g. both penalties above)."""

    def __init__(self, parts: List[WeightRegularizer]) -> None:
        if not parts:
            raise ConfigurationError("need at least one regularizer")
        self.parts = list(parts)

    def apply(self, parameters: Iterable[Parameter]) -> float:
        params = list(parameters)
        return sum(part.apply(params) for part in self.parts)


def read_friendly_regularizer(
    negative_strength: float = 1e-3, coherence_strength: float = 5e-4
) -> CompositeRegularizer:
    """The combination the paper's future-work remark suggests."""
    return CompositeRegularizer(
        [
            NegativeWeightPenalty(negative_strength),
            SignCoherencePenalty(coherence_strength),
        ]
    )
