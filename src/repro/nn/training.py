"""SGD training loop for the numpy DNN framework.

Minimal but complete: SGD with momentum and weight decay, step-decayed
learning rate, minibatch shuffling, and a :class:`Trainer` that records a
per-epoch history.  Enough to train the scaled VGG/ResNet models to high
accuracy on the synthetic datasets so the fault-injection study has a
meaningful accuracy to degrade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import TrainingError
from . import functional as F
from .layers import Module, Parameter


class SgdMomentum:
    """SGD with classical momentum and decoupled weight decay."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 1e-4,
    ) -> None:
        if lr <= 0:
            raise TrainingError("learning rate must be positive")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for p, v in zip(self.parameters, self._velocity):
            grad = p.grad + self.weight_decay * p.data
            v *= self.momentum
            v -= self.lr * grad
            p.data += v

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


@dataclass
class TrainHistory:
    """Per-epoch metrics collected by the trainer."""

    loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> float:
        return self.test_accuracy[-1] if self.test_accuracy else float("nan")


class Trainer:
    """Minibatch SGD trainer with step learning-rate decay."""

    def __init__(
        self,
        model: Module,
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 1e-4,
        batch_size: int = 64,
        lr_decay: float = 0.5,
        lr_decay_every: int = 5,
        seed: int = 0,
        regularizer=None,
    ) -> None:
        self.model = model
        self.optimizer = SgdMomentum(
            list(model.parameters()), lr=lr, momentum=momentum, weight_decay=weight_decay
        )
        self.batch_size = batch_size
        self.lr_decay = lr_decay
        self.lr_decay_every = lr_decay_every
        self.rng = np.random.default_rng(seed)
        #: optional reliability-aware penalty (see repro.nn.regularizers)
        self.regularizer = regularizer

    # ------------------------------------------------------------------ #
    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        epochs: int,
        x_test: Optional[np.ndarray] = None,
        y_test: Optional[np.ndarray] = None,
        verbose: bool = False,
    ) -> TrainHistory:
        """Train for ``epochs`` passes; returns the metric history."""
        history = TrainHistory()
        n = x_train.shape[0]
        for epoch in range(epochs):
            self.model.train()
            order = self.rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                loss = self._train_step(x_train[idx], y_train[idx])
                epoch_loss += loss
                n_batches += 1
            history.loss.append(epoch_loss / max(n_batches, 1))
            history.train_accuracy.append(self.evaluate(x_train[:512], y_train[:512]))
            if x_test is not None:
                history.test_accuracy.append(self.evaluate(x_test, y_test))
            if verbose:  # pragma: no cover - console output
                test = history.test_accuracy[-1] if history.test_accuracy else float("nan")
                print(
                    f"epoch {epoch + 1}/{epochs}: loss={history.loss[-1]:.4f} "
                    f"train_acc={history.train_accuracy[-1]:.3f} test_acc={test:.3f}"
                )
            if (epoch + 1) % self.lr_decay_every == 0:
                self.optimizer.lr *= self.lr_decay
        return history

    def _train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        self.optimizer.zero_grad()
        logits = self.model.forward(x)
        loss, grad = F.cross_entropy(logits, y)
        self.model.backward(grad)
        if self.regularizer is not None:
            loss += self.regularizer.apply(self.model.parameters())
        self.optimizer.step()
        return loss

    # ------------------------------------------------------------------ #
    def evaluate(
        self, x: np.ndarray, y: np.ndarray, topk: int = 1, batch_size: int = 256
    ) -> float:
        """Top-k accuracy in inference mode."""
        self.model.eval()
        correct_weighted = 0.0
        for start in range(0, x.shape[0], batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = self.model.forward(xb)
            correct_weighted += F.accuracy(logits, yb, topk=topk) * xb.shape[0]
        return correct_weighted / x.shape[0]
