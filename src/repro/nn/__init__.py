"""Numpy DNN substrate: layers, models, training, quantization, datasets.

Replaces the paper's PyTorch stack (offline environment): float training
with hand-written backprop, the paper's three evaluation topologies at a
configurable width, synthetic stand-ins for CIFAR-10/100 and ImageNet,
and int8 post-training quantization with integer inference exposing the
MAC accumulators to fault injection.
"""

from . import functional
from .datasets import DATASET_SPECS, DatasetSpec, SyntheticImageDataset, load_dataset
from .layers import (
    BasicBlock,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
)
from .models import (
    RESNET_STAGES,
    VGG16_LAYOUT,
    ClassifierNetwork,
    ConvLayerInfo,
    build_model,
    build_resnet,
    build_vgg16,
)
from .regularizers import (
    CompositeRegularizer,
    NegativeWeightPenalty,
    SignCoherencePenalty,
    WeightRegularizer,
    read_friendly_regularizer,
)
from .quantize import (
    QuantizedConv,
    QuantizedNetwork,
    fold_batchnorm,
    quantize_weights,
)
from .training import SgdMomentum, Trainer, TrainHistory

__all__ = [
    "BasicBlock",
    "BatchNorm2d",
    "ClassifierNetwork",
    "Conv2d",
    "ConvLayerInfo",
    "DATASET_SPECS",
    "DatasetSpec",
    "Flatten",
    "GlobalAvgPool",
    "Linear",
    "MaxPool2d",
    "Module",
    "NegativeWeightPenalty",
    "Parameter",
    "QuantizedConv",
    "QuantizedNetwork",
    "CompositeRegularizer",
    "RESNET_STAGES",
    "ReLU",
    "Sequential",
    "SignCoherencePenalty",
    "WeightRegularizer",
    "SgdMomentum",
    "SyntheticImageDataset",
    "Trainer",
    "TrainHistory",
    "VGG16_LAYOUT",
    "build_model",
    "build_resnet",
    "build_vgg16",
    "fold_batchnorm",
    "functional",
    "load_dataset",
    "quantize_weights",
    "read_friendly_regularizer",
]
