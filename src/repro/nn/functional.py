"""Stateless numerical kernels for the numpy DNN framework.

Forward *and* backward implementations of the operations the paper's
evaluation networks need (convolution via im2col, pooling, batch-norm
statistics, softmax cross-entropy).  The layer classes in
:mod:`repro.nn.layers` are thin stateful wrappers over these kernels, and
the kernels themselves are unit-tested against finite differences.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..arch.mapper import im2col
from ..errors import ShapeError


def conv_out_hw(h: int, w: int, fy: int, fx: int, stride: int, padding: int) -> Tuple[int, int]:
    """Output spatial dimensions of a convolution."""
    oh = (h + 2 * padding - fy) // stride + 1
    ow = (w + 2 * padding - fx) // stride + 1
    if oh < 1 or ow < 1:
        raise ShapeError(f"conv does not fit: {h}x{w} kernel {fy}x{fx} stride {stride}")
    return oh, ow


def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None, stride: int, padding: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Convolution forward.

    Returns ``(out, x_cols)`` where ``x_cols`` is the im2col matrix cached
    for the backward pass.  ``x`` is ``(N, C, H, W)``, ``weight`` is
    ``(K, C, Fy, Fx)``, the result ``(N, K, OH, OW)``.
    """
    n, _, h, w = x.shape
    k, _, fy, fx = weight.shape
    oh, ow = conv_out_hw(h, w, fy, fx, stride, padding)
    x_cols = im2col(x, fy, fx, stride=stride, padding=padding)  # (N*OH*OW, C*Fy*Fx)
    w_mat = weight.reshape(k, -1)  # (K, C*Fy*Fx)
    out = x_cols @ w_mat.T
    if bias is not None:
        out = out + bias[None, :]
    return out.reshape(n, oh, ow, k).transpose(0, 3, 1, 2), x_cols


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    fy: int,
    fx: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter-add inverse of :func:`repro.arch.mapper.im2col`.

    ``cols`` has shape ``(N*OH*OW, C*Fy*Fx)``; overlapping windows add,
    which is exactly the gradient of the window extraction.
    """
    n, c, h, w = x_shape
    oh, ow = conv_out_hw(h, w, fy, fx, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    x_padded = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, fy, fx).transpose(0, 3, 1, 2, 4, 5)
    # scatter-add each kernel offset in one vectorized slice-assignment
    for dy in range(fy):
        for dx in range(fx):
            x_padded[:, :, dy : dy + stride * oh : stride, dx : dx + stride * ow : stride] += cols6[
                :, :, :, :, dy, dx
            ]
    if padding:
        return x_padded[:, :, padding : padding + h, padding : padding + w]
    return x_padded


def conv2d_backward(
    grad_out: np.ndarray,
    x_cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    weight: np.ndarray,
    stride: int,
    padding: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of conv2d w.r.t. input, weight and bias."""
    n, k, oh, ow = grad_out.shape
    g = grad_out.transpose(0, 2, 3, 1).reshape(-1, k)  # (N*OH*OW, K)
    w_mat = weight.reshape(k, -1)
    grad_w = (g.T @ x_cols).reshape(weight.shape)
    grad_b = g.sum(axis=0)
    grad_cols = g @ w_mat
    fy, fx = weight.shape[2], weight.shape[3]
    grad_x = col2im(grad_cols, x_shape, fy, fx, stride, padding)
    return grad_x, grad_w, grad_b


def relu_forward(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """ReLU and its mask (cached for backward)."""
    mask = x > 0
    return x * mask, mask


def relu_backward(grad_out: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Gradient of ReLU."""
    return grad_out * mask


def maxpool2d_forward(x: np.ndarray, size: int, stride: int) -> Tuple[np.ndarray, np.ndarray]:
    """Max pooling; returns output and the argmax index cache."""
    n, c, h, w = x.shape
    oh = (h - size) // stride + 1
    ow = (w - size) // stride + 1
    s = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, size, size),
        strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
        writeable=False,
    ).reshape(n, c, oh, ow, size * size)
    idx = windows.argmax(axis=-1)
    out = np.take_along_axis(windows, idx[..., None], axis=-1)[..., 0]
    return out, idx


def maxpool2d_backward(
    grad_out: np.ndarray,
    idx: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    size: int,
    stride: int,
) -> np.ndarray:
    """Gradient of max pooling (routes to the argmax positions)."""
    n, c, h, w = x_shape
    oh, ow = grad_out.shape[2], grad_out.shape[3]
    grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
    dy, dx = np.divmod(idx, size)
    ii, cc, yy, xx = np.meshgrid(
        np.arange(n), np.arange(c), np.arange(oh), np.arange(ow), indexing="ij"
    )
    np.add.at(grad_x, (ii, cc, yy * stride + dy, xx * stride + dx), grad_out)
    return grad_x


def global_avgpool_forward(x: np.ndarray) -> np.ndarray:
    """Spatial mean: ``(N, C, H, W) -> (N, C)``."""
    return x.mean(axis=(2, 3))


def global_avgpool_backward(grad_out: np.ndarray, x_shape) -> np.ndarray:
    """Gradient of the spatial mean."""
    n, c, h, w = x_shape
    return np.broadcast_to(grad_out[:, :, None, None], x_shape) / (h * w)


def batchnorm_forward(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    momentum: float,
    eps: float,
    training: bool,
):
    """Batch normalization over the channel axis of ``(N, C, H, W)``.

    Returns ``(out, cache)``; updates the running statistics in place when
    ``training``.
    """
    if training:
        mean = x.mean(axis=(0, 2, 3))
        var = x.var(axis=(0, 2, 3))
        running_mean *= 1 - momentum
        running_mean += momentum * mean
        running_var *= 1 - momentum
        running_var += momentum * var
    else:
        mean, var = running_mean, running_var
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
    out = gamma[None, :, None, None] * x_hat + beta[None, :, None, None]
    cache = (x_hat, inv_std, gamma)
    return out, cache


def batchnorm_backward(grad_out: np.ndarray, cache) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of batch normalization (training-mode statistics)."""
    x_hat, inv_std, gamma = cache
    n, _, h, w = grad_out.shape
    m = n * h * w
    grad_gamma = (grad_out * x_hat).sum(axis=(0, 2, 3))
    grad_beta = grad_out.sum(axis=(0, 2, 3))
    g = grad_out * gamma[None, :, None, None]
    grad_x = (
        inv_std[None, :, None, None]
        / m
        * (
            m * g
            - g.sum(axis=(0, 2, 3))[None, :, None, None]
            - x_hat * (g * x_hat).sum(axis=(0, 2, 3))[None, :, None, None]
        )
    )
    return grad_x, grad_gamma, grad_beta


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the max-subtraction stabilization."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits."""
    if logits.ndim != 2:
        raise ShapeError(f"logits must be (batch, classes), got {logits.shape}")
    n = logits.shape[0]
    probs = softmax(logits)
    eps = 1e-12
    loss = -np.log(probs[np.arange(n), labels] + eps).mean()
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return float(loss), grad / n


def topk_correct(logits: np.ndarray, labels: np.ndarray, topk: int = 1) -> int:
    """Number of top-k-correct predictions (an exact integer count).

    Chunked evaluation loops accumulate these counts instead of
    per-chunk accuracy floats, so a short final chunk (non-divisible
    batch size) can never skew the weighting and the total is exact.
    """
    if topk == 1:
        return int((logits.argmax(axis=1) == labels).sum())
    top = np.argpartition(-logits, topk - 1, axis=1)[:, :topk]
    return int((top == labels[:, None]).any(axis=1).sum())


def accuracy(logits: np.ndarray, labels: np.ndarray, topk: int = 1) -> float:
    """Top-k classification accuracy (Fig. 11 uses top-3)."""
    return topk_correct(logits, labels, topk) / logits.shape[0]
