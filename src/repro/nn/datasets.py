"""Synthetic class-conditional image datasets.

The paper evaluates on CIFAR-10, CIFAR-100 and ImageNet, none of which are
available offline.  The substitution (documented in DESIGN.md §2) is a
procedural generator producing datasets with the same tensor shapes and a
controllable difficulty: each class is defined by a random mixture of
oriented sinusoidal gratings and Gaussian blobs; samples jitter the phase,
position and amplitude of the class template and add pixel noise.  The
result is learnable by the scaled VGG/ResNet models to high accuracy yet
non-trivial (tens of percent error at high noise), which is all the
fault-injection study needs: a trained network whose accuracy degradation
under bit errors can be compared across dataflow strategies.

The three paper datasets map to:

* ``cifar10_like``   — 32x32x3, 10 classes
* ``cifar100_like``  — 32x32x3, 20 classes (reduced from 100 so the scaled
  models reach useful accuracy in offline training; top-3 accuracy is
  reported as in Fig. 11)
* ``imagenet32_like`` — 32x32x3, 40 classes (stand-in for ImageNet at the
  32x32 "downsampled ImageNet" resolution)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DatasetSpec:
    """Configuration of a synthetic dataset."""

    name: str
    n_classes: int
    image_size: int = 32
    channels: int = 3
    n_gratings: int = 3
    n_blobs: int = 2
    noise_sigma: float = 0.12
    jitter: float = 0.35
    seed: int = 2023

    def __post_init__(self) -> None:
        if self.n_classes < 2:
            raise ConfigurationError("need at least 2 classes")
        if self.image_size < 8:
            raise ConfigurationError("image_size must be >= 8")


class SyntheticImageDataset:
    """Generator for one :class:`DatasetSpec`.

    Class templates are fixed by the spec's seed; :meth:`sample` draws
    i.i.d. images given a separate stream seed, so train/test splits are
    disjoint by construction.
    """

    def __init__(self, spec: DatasetSpec) -> None:
        self.spec = spec
        self._templates = self._build_templates()

    # ------------------------------------------------------------------ #
    def _build_templates(self) -> Dict[int, dict]:
        spec = self.spec
        rng = np.random.default_rng(spec.seed)
        templates = {}
        for cls in range(spec.n_classes):
            gratings = []
            for _ in range(spec.n_gratings):
                gratings.append(
                    {
                        "freq": rng.uniform(1.0, 5.0),
                        "angle": rng.uniform(0, np.pi),
                        "phase": rng.uniform(0, 2 * np.pi),
                        "color": rng.dirichlet(np.ones(spec.channels)),
                        "amp": rng.uniform(0.4, 1.0),
                    }
                )
            blobs = []
            for _ in range(spec.n_blobs):
                blobs.append(
                    {
                        "cy": rng.uniform(0.2, 0.8),
                        "cx": rng.uniform(0.2, 0.8),
                        "sigma": rng.uniform(0.08, 0.25),
                        "color": rng.uniform(0.3, 1.0, size=spec.channels),
                        "amp": rng.uniform(0.5, 1.2),
                    }
                )
            templates[cls] = {"gratings": gratings, "blobs": blobs}
        return templates

    # ------------------------------------------------------------------ #
    def sample(self, n: int, stream_seed: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` images: returns ``(images, labels)``.

        Images are float64 in [0, 1] with shape ``(n, C, H, W)``; labels
        are balanced across classes (round-robin then shuffled).
        """
        spec = self.spec
        rng = np.random.default_rng(stream_seed)
        labels = np.arange(n) % spec.n_classes
        rng.shuffle(labels)

        size = spec.image_size
        yy, xx = np.meshgrid(
            np.linspace(0, 1, size), np.linspace(0, 1, size), indexing="ij"
        )
        images = np.zeros((n, spec.channels, size, size))
        for i, cls in enumerate(labels):
            template = self._templates[int(cls)]
            img = np.zeros((spec.channels, size, size))
            for g in template["gratings"]:
                phase = g["phase"] + rng.uniform(-spec.jitter, spec.jitter) * np.pi
                amp = g["amp"] * (1 + rng.uniform(-spec.jitter, spec.jitter))
                wave = np.sin(
                    2 * np.pi * g["freq"] * (np.cos(g["angle"]) * xx + np.sin(g["angle"]) * yy)
                    + phase
                )
                img += amp * g["color"][:, None, None] * wave[None]
            for b in template["blobs"]:
                cy = b["cy"] + rng.uniform(-spec.jitter, spec.jitter) * 0.2
                cx = b["cx"] + rng.uniform(-spec.jitter, spec.jitter) * 0.2
                blob = np.exp(-(((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * b["sigma"] ** 2)))
                img += b["amp"] * b["color"][:, None, None] * blob[None]
            img += rng.normal(0, spec.noise_sigma, size=img.shape)
            images[i] = img
        # normalize each image into [0, 1]
        flat = images.reshape(n, -1)
        lo = flat.min(axis=1)[:, None]
        hi = flat.max(axis=1)[:, None]
        flat = (flat - lo) / np.maximum(hi - lo, 1e-9)
        return flat.reshape(images.shape), labels.astype(np.int64)

    def train_test(
        self, n_train: int, n_test: int, seed: int = 0
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Disjoint train/test draws: ``(x_train, y_train, x_test, y_test)``."""
        x_train, y_train = self.sample(n_train, stream_seed=seed * 2 + 1)
        x_test, y_test = self.sample(n_test, stream_seed=seed * 2 + 2)
        return x_train, y_train, x_test, y_test


#: Named dataset specs mirroring the paper's three benchmarks.
DATASET_SPECS: Dict[str, DatasetSpec] = {
    "cifar10_like": DatasetSpec(name="cifar10_like", n_classes=10),
    "cifar100_like": DatasetSpec(name="cifar100_like", n_classes=20, seed=2024),
    "imagenet32_like": DatasetSpec(name="imagenet32_like", n_classes=40, seed=2025),
}


def load_dataset(name: str) -> SyntheticImageDataset:
    """Look up a named synthetic dataset (see module docstring)."""
    if name not in DATASET_SPECS:
        raise ConfigurationError(
            f"unknown dataset {name!r}; expected one of {sorted(DATASET_SPECS)}"
        )
    return SyntheticImageDataset(DATASET_SPECS[name])
