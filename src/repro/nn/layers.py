"""Layer/module system of the numpy DNN framework.

A deliberately small PyTorch-like module system: every :class:`Module`
implements ``forward`` (caching what backward needs) and ``backward``
(returning the gradient w.r.t. its input and accumulating parameter
gradients).  This is all the paper's evaluation networks (VGG-16,
ResNet-18/34) require, and hand-written backwards are finite-difference
checked in the test suite.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, ShapeError, TrainingError
from . import functional as F


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter({self.name or 'unnamed'}, shape={self.data.shape})"


class Module:
    """Base class: forward/backward plus parameter traversal."""

    training: bool = True

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def parameters(self) -> Iterator[Parameter]:
        """Yield this module's parameters, including submodules'."""
        for value in vars(self).values():
            if isinstance(value, Parameter):
                yield value
            elif isinstance(value, Module):
                yield from value.parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.parameters()

    def modules(self) -> Iterator["Module"]:
        """Yield self and all submodules depth-first."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def train(self, mode: bool = True) -> "Module":
        """Switch training mode recursively (affects batch-norm)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Switch to inference mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Conv2d(Module):
    """2-D convolution with He-normal initialization.

    ``groups`` splits the channel axes the standard way: input channels
    and output channels are divided into ``groups`` contiguous blocks and
    block ``g`` of the outputs only reads block ``g`` of the inputs
    (``groups == in_channels`` is a depthwise convolution).  The weight
    tensor has shape ``(out_channels, in_channels // groups, Fy, Fx)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        groups: int = 1,
        rng: Optional[np.random.Generator] = None,
        name: str = "conv",
    ) -> None:
        if min(in_channels, out_channels, kernel_size) < 1:
            raise ConfigurationError("conv dimensions must be >= 1")
        if groups < 1:
            raise ConfigurationError("groups must be >= 1")
        if in_channels % groups or out_channels % groups:
            raise ConfigurationError(
                f"groups={groups} must divide both channel counts "
                f"({in_channels} -> {out_channels})"
            )
        rng = rng or np.random.default_rng()
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.weight = Parameter(
            rng.normal(
                0.0,
                scale,
                size=(out_channels, in_channels // groups, kernel_size, kernel_size),
            ),
            name=f"{name}.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name=f"{name}.bias") if bias else None
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.name = name
        self._cache = None

    def _group_slices(self):
        """Per-group ``(in channels, out channels)`` slices."""
        c_in = self.weight.data.shape[1]
        k = self.weight.data.shape[0] // self.groups
        return [
            (slice(g * c_in, (g + 1) * c_in), slice(g * k, (g + 1) * k))
            for g in range(self.groups)
        ]

    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.bias is not None else None
        if self.groups == 1:
            out, x_cols = F.conv2d_forward(x, self.weight.data, bias, self.stride, self.padding)
            self._cache = ([x_cols], x.shape)
            return out
        outs, caches = [], []
        for in_sl, out_sl in self._group_slices():
            out_g, cols_g = F.conv2d_forward(
                x[:, in_sl],
                self.weight.data[out_sl],
                bias[out_sl] if bias is not None else None,
                self.stride,
                self.padding,
            )
            outs.append(out_g)
            caches.append(cols_g)
        self._cache = (caches, x.shape)
        return np.concatenate(outs, axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise TrainingError("backward called before forward")
        caches, x_shape = self._cache
        if self.groups == 1:
            grad_x, grad_w, grad_b = F.conv2d_backward(
                grad_out, caches[0], x_shape, self.weight.data, self.stride, self.padding
            )
            self.weight.grad += grad_w
            if self.bias is not None:
                self.bias.grad += grad_b
            return grad_x
        n, _, h, w = x_shape
        c_in = self.weight.data.shape[1]
        grads_x = []
        for g, (in_sl, out_sl) in enumerate(self._group_slices()):
            grad_x_g, grad_w_g, grad_b_g = F.conv2d_backward(
                grad_out[:, out_sl],
                caches[g],
                (n, c_in, h, w),
                self.weight.data[out_sl],
                self.stride,
                self.padding,
            )
            self.weight.grad[out_sl] += grad_w_g
            if self.bias is not None:
                self.bias.grad[out_sl] += grad_b_g
            grads_x.append(grad_x_g)
        return np.concatenate(grads_x, axis=1)


class Linear(Module):
    """Fully connected layer."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        name: str = "fc",
    ) -> None:
        rng = rng or np.random.default_rng()
        scale = np.sqrt(2.0 / in_features)
        self.weight = Parameter(
            rng.normal(0.0, scale, size=(in_features, out_features)), name=f"{name}.weight"
        )
        self.bias = Parameter(np.zeros(out_features), name=f"{name}.bias")
        self.name = name
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ShapeError(f"Linear expects (batch, features), got {x.shape}")
        self._x = x
        return x @ self.weight.data + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise TrainingError("backward called before forward")
        self.weight.grad += self._x.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.data.T


class ReLU(Module):
    """Rectified linear unit — the source of READ's non-negative inputs."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._mask = F.relu_forward(x)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise TrainingError("backward called before forward")
        return F.relu_backward(grad_out, self._mask)


class BatchNorm2d(Module):
    """Batch normalization over channels of ``(N, C, H, W)``."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5, name: str = "bn"):
        self.gamma = Parameter(np.ones(channels), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(channels), name=f"{name}.beta")
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.momentum = momentum
        self.eps = eps
        self.name = name
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._cache = F.batchnorm_forward(
            x,
            self.gamma.data,
            self.beta.data,
            self.running_mean,
            self.running_var,
            self.momentum,
            self.eps,
            self.training,
        )
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise TrainingError("backward called before forward")
        grad_x, grad_gamma, grad_beta = F.batchnorm_backward(grad_out, self._cache)
        self.gamma.grad += grad_gamma
        self.beta.grad += grad_beta
        return grad_x


class MaxPool2d(Module):
    """Max pooling (VGG's down-sampling)."""

    def __init__(self, size: int = 2, stride: Optional[int] = None) -> None:
        self.size = size
        self.stride = stride or size
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, idx = F.maxpool2d_forward(x, self.size, self.stride)
        self._cache = (idx, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise TrainingError("backward called before forward")
        idx, x_shape = self._cache
        return F.maxpool2d_backward(grad_out, idx, x_shape, self.size, self.stride)


class GlobalAvgPool(Module):
    """Global average pooling: ``(N, C, H, W) -> (N, C)`` (ResNet head)."""

    def __init__(self) -> None:
        self._x_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return F.global_avgpool_forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise TrainingError("backward called before forward")
        return F.global_avgpool_backward(grad_out, self._x_shape)


class Flatten(Module):
    """``(N, C, H, W) -> (N, C*H*W)`` (VGG head)."""

    def __init__(self) -> None:
        self._x_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise TrainingError("backward called before forward")
        return grad_out.reshape(self._x_shape)


class PatchExtract(Module):
    """``(N, C, H, W) -> (N, T, C*p*p)``: non-overlapping patch tokens.

    The embedding front of the mixer/ViT recipes: each ``p x p`` spatial
    patch becomes one token whose feature vector concatenates the patch
    pixels channel-major.  Pure reshape/transpose — no parameters.
    """

    def __init__(self, patch: int) -> None:
        if patch < 1:
            raise ConfigurationError("patch size must be >= 1")
        self.patch = patch
        self._x_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"PatchExtract expects (N, C, H, W), got {x.shape}")
        n, c, h, w = x.shape
        p = self.patch
        if h % p or w % p:
            raise ShapeError(f"patch {p} must divide spatial dims {h}x{w}")
        self._x_shape = x.shape
        tokens = x.reshape(n, c, h // p, p, w // p, p)
        tokens = tokens.transpose(0, 2, 4, 1, 3, 5)
        return tokens.reshape(n, (h // p) * (w // p), c * p * p)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise TrainingError("backward called before forward")
        n, c, h, w = self._x_shape
        p = self.patch
        grad = grad_out.reshape(n, h // p, w // p, c, p, p)
        grad = grad.transpose(0, 3, 1, 4, 2, 5)
        return grad.reshape(n, c, h, w)


class TokenLinear(Linear):
    """A :class:`Linear` applied per token: ``(N, T, in) -> (N, T, out)``.

    Subclassing keeps every ``isinstance(module, Linear)`` walk (scenario
    layer enumeration, quantized lowering) working unchanged; only the
    batched-token shape handling differs.
    """

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3:
            raise ShapeError(f"TokenLinear expects (batch, tokens, features), got {x.shape}")
        self._x = x
        return x @ self.weight.data + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise TrainingError("backward called before forward")
        d_in = self.weight.data.shape[0]
        d_out = self.weight.data.shape[1]
        self.weight.grad += self._x.reshape(-1, d_in).T @ grad_out.reshape(-1, d_out)
        self.bias.grad += grad_out.reshape(-1, d_out).sum(axis=0)
        return grad_out @ self.weight.data.T


class LayerNorm(Module):
    """Layer normalization over the last axis (token feature vectors)."""

    def __init__(self, dim: int, eps: float = 1e-5, name: str = "ln") -> None:
        self.gamma = Parameter(np.ones(dim), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(dim), name=f"{name}.beta")
        self.eps = eps
        self.name = name
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean) * inv
        self._cache = (xhat, inv)
        return xhat * self.gamma.data + self.beta.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise TrainingError("backward called before forward")
        xhat, inv = self._cache
        dim = self.gamma.data.shape[0]
        g = grad_out * self.gamma.data
        grad_x = (
            g
            - g.mean(axis=-1, keepdims=True)
            - xhat * (g * xhat).mean(axis=-1, keepdims=True)
        ) * inv
        self.gamma.grad += (grad_out * xhat).reshape(-1, dim).sum(axis=0)
        self.beta.grad += grad_out.reshape(-1, dim).sum(axis=0)
        return grad_x


class SelfAttention(Module):
    """Single-head self-attention over token sequences.

    Q/K/V/output projections are :class:`TokenLinear` layers (static-
    weight GEMMs); the two activation-activation products — the scaled
    ``Q @ K^T`` score matrix and the ``softmax @ V`` mix — are the
    dynamic GEMMs the quantized lowering maps onto the systolic array
    under the names in :attr:`dynamic_gemm_names`.
    """

    def __init__(
        self,
        dim: int,
        rng: Optional[np.random.Generator] = None,
        name: str = "attn",
    ) -> None:
        rng = rng or np.random.default_rng()
        self.q = TokenLinear(dim, dim, rng=rng, name=f"{name}.q")
        self.k = TokenLinear(dim, dim, rng=rng, name=f"{name}.k")
        self.v = TokenLinear(dim, dim, rng=rng, name=f"{name}.v")
        self.proj = TokenLinear(dim, dim, rng=rng, name=f"{name}.proj")
        self.scale = 1.0 / np.sqrt(dim)
        self.name = name
        #: Names under which the runtime activation-activation products
        #: appear in the quantized pipeline (scores, attention-mix).
        self.dynamic_gemm_names = (f"{name}.qk", f"{name}.av")
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3:
            raise ShapeError(f"SelfAttention expects (batch, tokens, dim), got {x.shape}")
        q = self.q.forward(x)
        k = self.k.forward(x)
        v = self.v.forward(x)
        scores = q @ k.transpose(0, 2, 1) * self.scale
        e = np.exp(scores - scores.max(axis=-1, keepdims=True))
        p = e / e.sum(axis=-1, keepdims=True)
        out = p @ v
        self._cache = (q, k, v, p)
        return self.proj.forward(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise TrainingError("backward called before forward")
        q, k, v, p = self._cache
        d_out = self.proj.backward(grad_out)
        dv = p.transpose(0, 2, 1) @ d_out
        dp = d_out @ v.transpose(0, 2, 1)
        ds = p * (dp - (dp * p).sum(axis=-1, keepdims=True))
        dq = ds @ k * self.scale
        dk = ds.transpose(0, 2, 1) @ q * self.scale
        return self.q.backward(dq) + self.k.backward(dk) + self.v.backward(dv)


class EncoderBlock(Module):
    """Pre-norm transformer encoder block: attention + ReLU MLP."""

    def __init__(
        self,
        dim: int,
        hidden: int,
        rng: Optional[np.random.Generator] = None,
        name: str = "block",
    ) -> None:
        rng = rng or np.random.default_rng()
        self.ln1 = LayerNorm(dim, name=f"{name}.ln1")
        self.attn = SelfAttention(dim, rng=rng, name=f"{name}.attn")
        self.ln2 = LayerNorm(dim, name=f"{name}.ln2")
        self.ffn1 = TokenLinear(dim, hidden, rng=rng, name=f"{name}.ffn1")
        self.relu = ReLU()
        self.ffn2 = TokenLinear(hidden, dim, rng=rng, name=f"{name}.ffn2")
        self.name = name

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = x + self.attn.forward(self.ln1.forward(x))
        return h + self.ffn2.forward(self.relu.forward(self.ffn1.forward(self.ln2.forward(h))))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_h = grad_out + self.ln2.backward(
            self.ffn1.backward(self.relu.backward(self.ffn2.backward(grad_out)))
        )
        return grad_h + self.ln1.backward(self.attn.backward(grad_h))


class TokenMean(Module):
    """Mean over the token axis: ``(N, T, D) -> (N, D)`` (sequence head)."""

    def __init__(self) -> None:
        self._x_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3:
            raise ShapeError(f"TokenMean expects (batch, tokens, dim), got {x.shape}")
        self._x_shape = x.shape
        return x.mean(axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise TrainingError("backward called before forward")
        n, t, d = self._x_shape
        return np.broadcast_to(grad_out[:, None, :] / t, (n, t, d)).copy()


class Sequential(Module):
    """Chain of modules executed in order."""

    def __init__(self, layers: Sequence[Module]) -> None:
        self.layers: List[Module] = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class BasicBlock(Module):
    """ResNet basic block: two 3x3 convs with identity/projection shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
        name: str = "block",
    ) -> None:
        self.conv1 = Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False,
            rng=rng, name=f"{name}.conv1",
        )
        self.bn1 = BatchNorm2d(out_channels, name=f"{name}.bn1")
        self.relu1 = ReLU()
        self.conv2 = Conv2d(
            out_channels, out_channels, 3, stride=1, padding=1, bias=False,
            rng=rng, name=f"{name}.conv2",
        )
        self.bn2 = BatchNorm2d(out_channels, name=f"{name}.bn2")
        self.relu_out = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut_conv: Optional[Conv2d] = Conv2d(
                in_channels, out_channels, 1, stride=stride, padding=0, bias=False,
                rng=rng, name=f"{name}.shortcut",
            )
            self.shortcut_bn: Optional[BatchNorm2d] = BatchNorm2d(
                out_channels, name=f"{name}.shortcut_bn"
            )
        else:
            self.shortcut_conv = None
            self.shortcut_bn = None
        self.name = name

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = self.bn1.forward(self.conv1.forward(x))
        main = self.relu1.forward(main)
        main = self.bn2.forward(self.conv2.forward(main))
        if self.shortcut_conv is not None:
            residual = self.shortcut_bn.forward(self.shortcut_conv.forward(x))
        else:
            residual = x
        return self.relu_out.forward(main + residual)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_sum = self.relu_out.backward(grad_out)
        # main branch
        grad_main = self.bn2.backward(grad_sum)
        grad_main = self.conv2.backward(grad_main)
        grad_main = self.relu1.backward(grad_main)
        grad_main = self.bn1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        # shortcut branch
        if self.shortcut_conv is not None:
            grad_short = self.shortcut_bn.backward(grad_sum)
            grad_short = self.shortcut_conv.backward(grad_short)
        else:
            grad_short = grad_sum
        return grad_main + grad_short
