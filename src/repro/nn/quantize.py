"""Post-training int8 quantization and integer inference.

The accelerator executes convolutions as integer GEMMs: uint8 activations
(ReLU outputs), int8 weights, wide-accumulator partial sums (Section II).
This module turns a trained float :class:`~repro.nn.models.ClassifierNetwork`
into a :class:`QuantizedNetwork` that

* folds each batch-norm into its preceding convolution (what a deployment
  compiler does — and what determines the weight *signs* READ reorders);
* quantizes weights per-tensor symmetric (int8 by default, any 2-16-bit
  width per layer) and activations per-tensor unsigned (scales from a
  calibration batch);
* executes each convolution as an exact integer GEMM, exposing the raw
  integer accumulators to a fault-injection hook (the paper's
  error-injection point: output activations *before* the activation
  function) and optionally recording the quantized operand streams that
  the systolic-array TER simulation replays;
* lowers the classifier head's ``Linear`` layers to 1x1 quantized
  convolutions (``Flatten`` / ``GlobalAvgPool`` become shape adapters),
  so the head runs on the same integer datapath as every other layer and
  is covered by TER simulation and fault injection — the seed repro's
  float-head special case is gone;
* supports grouped/depthwise convolutions (per-group integer GEMMs over
  contiguous channel blocks) and per-layer mixed-precision bit widths
  (``bits_per_layer``: layer name -> n_bits applied to both the weight
  and activation quantizers; unlisted layers use ``default_bits``).

Non-convolution operators (ReLU, pooling, residual adds) execute in
float — they are not in the MAC datapath under study.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch.mapper import im2col
from ..errors import QuantizationError, TrainingError
from . import functional as F
from .layers import (
    BasicBlock,
    BatchNorm2d,
    Conv2d,
    EncoderBlock,
    Flatten,
    GlobalAvgPool,
    LayerNorm,
    Linear,
    MaxPool2d,
    Module,
    PatchExtract,
    ReLU,
    SelfAttention,
    Sequential,
    TokenLinear,
    TokenMean,
)
from .models import ClassifierNetwork

#: Injection hook signature: (integer accumulators (pixels, K), layer) -> modified.
Injector = Callable[[np.ndarray, "QuantizedConv"], np.ndarray]

#: Gate for the pruning/dedup trial runtime ("0"/"false"/"no" disable it).
INJECTION_PRUNE_ENV = "REPRO_INJECTION_PRUNE"

#: A diverged trial class that has absorbed more flips than this skips
#: the masked-trial compare at layer checkpoints: full-tensor equality
#: is all but impossible there, and the compare costs a tensor scan.
_PRUNE_CHECK_MAX_FLIPS = 64


def injection_pruning_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve the masked-trial pruning / effective-flip dedup gate.

    ``explicit`` wins when given; otherwise ``REPRO_INJECTION_PRUNE``
    selects between the pruning lanes walk and the legacy always-stacked
    walk (default: pruning on).  The two runtimes are bit-identical —
    the knob exists so conformance CI can prove that, and as an escape
    hatch.
    """
    if explicit is not None:
        return bool(explicit)
    return os.environ.get(INJECTION_PRUNE_ENV, "1").strip().lower() not in (
        "0",
        "false",
        "no",
    )


@dataclass
class TrialBatchStats:
    """Work-avoidance counters of one pruning-runtime stacked walk.

    ``pruned`` counts (trial, checkpoint) events where a diverged
    trial's tensor matched the fault-free activations and the trial
    exited the stacked forward; ``deduped`` counts (trial, layer) events
    where a trial's flip draw collapsed onto an already-evaluated
    representative (zero-effective-flip draws rejoining the fault-free
    lane, or duplicate flip patterns sharing one class).
    """

    pruned: int = 0
    deduped: int = 0

    def merge(self, other: "TrialBatchStats") -> None:
        self.pruned += other.pruned
        self.deduped += other.deduped


def fold_batchnorm(
    conv: Conv2d, bn: Optional[BatchNorm2d]
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold an inference-mode batch norm into conv weights and bias.

    Returns the effective float ``(weight, bias)`` such that
    ``bn(conv(x)) == conv'(x)`` with the running statistics.
    """
    weight = conv.weight.data.copy()
    bias = conv.bias.data.copy() if conv.bias is not None else np.zeros(weight.shape[0])
    if bn is None:
        return weight, bias
    inv_std = 1.0 / np.sqrt(bn.running_var + bn.eps)
    scale = bn.gamma.data * inv_std  # per output channel
    weight *= scale[:, None, None, None]
    bias = (bias - bn.running_mean) * scale + bn.beta.data
    return weight, bias


def canonical_bits(
    bits_per_layer: Optional[object], default_bits: int = 8
) -> Tuple[Tuple[str, int], ...]:
    """Normalize a per-layer bit-width spec to a name-sorted tuple.

    Entries equal to ``default_bits`` are dropped, so specs that resolve
    to the same effective quantization normalize — and therefore hash
    and cache (bundle memo, :class:`~repro.faults.InjectionJob` content
    key) — identically.  The single normalization every consumer shares.
    """
    if not bits_per_layer:
        return ()
    items = bits_per_layer.items() if hasattr(bits_per_layer, "items") else bits_per_layer
    return tuple(
        sorted((str(k), int(v)) for k, v in items if int(v) != int(default_bits))
    )


def quantize_weights(weight: np.ndarray, n_bits: int = 8) -> Tuple[np.ndarray, float]:
    """Per-tensor symmetric ``n_bits``-wide quantization: ``(w_q, scale)``.

    ``n_bits=8`` is the paper's int8 datapath; the mixed-precision
    scenarios narrow individual layers down to 2 bits through this same
    entry point.
    """
    max_abs = float(np.abs(weight).max())
    if max_abs == 0:
        return np.zeros_like(weight, dtype=np.int64), 1.0
    q_max = (1 << (n_bits - 1)) - 1
    scale = max_abs / q_max
    w_q = np.clip(np.round(weight / scale), -q_max - 1, q_max).astype(np.int64)
    return w_q, scale


class QuantizedConv:
    """A conv layer executing as an integer GEMM on the accelerator.

    Lifecycle: constructed un-calibrated (``in_scale is None``) — forward
    then runs in float and records the input range; after
    :meth:`finalize_calibration` the forward path is the integer GEMM.

    Attributes
    ----------
    name:
        Source conv layer name (keys the per-layer TER/BER tables).
    weight_q / w_scale / bias:
        Folded, quantized parameters (``weight_bits`` per-tensor
        symmetric weights, ``act_bits`` unsigned activations — a
        mixed-precision network varies these per layer).
    groups:
        Grouped-convolution factor: the layer executes as ``groups``
        independent integer GEMMs over contiguous channel blocks
        (``groups == in_channels`` is depthwise).
    injector:
        Optional fault hook applied to the raw accumulators.
    recorded_cols:
        When ``record`` is set, the most recent quantized im2col operand
        matrix ``(pixels, C*Fy*Fx)`` — the exact stream the systolic
        simulator replays for TER measurement.  For a grouped layer the
        reduction axis is the concatenation of the per-group operand
        blocks (identical to the dense im2col, channels being contiguous
        per group); group ``g`` owns columns ``group_col_spans()[g]``.
    """

    def __init__(
        self,
        name: str,
        weight: np.ndarray,
        bias: np.ndarray,
        stride: int,
        padding: int,
        act_bits: int = 8,
        weight_bits: int = 8,
        groups: int = 1,
    ) -> None:
        if groups < 1 or weight.shape[0] % groups:
            raise QuantizationError(
                f"layer {name}: groups={groups} must divide the "
                f"{weight.shape[0]} output channels"
            )
        self.name = name
        self.weight_float = weight
        self.weight_q, self.w_scale = quantize_weights(weight, n_bits=weight_bits)
        self.bias = bias
        self.stride = stride
        self.padding = padding
        self.act_bits = act_bits
        self.weight_bits = weight_bits
        self.groups = groups
        self.in_scale: Optional[float] = None
        self._observed_max = 0.0
        self.injector: Optional[Injector] = None
        self.record = False
        self.recorded_cols: Optional[np.ndarray] = None

        self._lowered: Optional[List[np.ndarray]] = None
        self._blas_weights: Optional[List[np.ndarray]] = None
        self._blas_checked = False
        self._blas_weights_hwc: Optional[List[np.ndarray]] = None

    # ------------------------------------------------------------------ #
    @property
    def out_channels(self) -> int:
        return self.weight_q.shape[0]

    @property
    def in_channels(self) -> int:
        """Input channels consumed (``C``, summed over groups)."""
        return self.weight_q.shape[1] * self.groups

    @property
    def kernel_area(self) -> int:
        return self.weight_q.shape[2] * self.weight_q.shape[3]

    @property
    def n_macs_per_output(self) -> int:
        """Reduction length N of Eq. 1 (per output — i.e. per group)."""
        return int(np.prod(self.weight_q.shape[1:]))

    def group_col_spans(self) -> List[Tuple[int, int]]:
        """Per-group ``(start, stop)`` column spans of the im2col matrix.

        The dense im2col reduction axis is ordered ``(c, fy, fx)`` with
        channels outermost, so each group's operands are one contiguous
        block of ``(C / groups) * Fy * Fx`` columns.
        """
        span = self.n_macs_per_output
        return [(g * span, (g + 1) * span) for g in range(self.groups)]

    def lowered_weight_matrix(self) -> np.ndarray:
        """Quantized GEMM weight matrix ``(C*Fy*Fx, K)`` for READ planning.

        Only meaningful for dense layers; a grouped layer is ``groups``
        independent GEMMs — use :meth:`lowered_group_weights`.
        """
        if self.groups != 1:
            raise QuantizationError(
                f"layer {self.name} has groups={self.groups}; use lowered_group_weights()"
            )
        return self._lowered_weights()[0].copy()

    def lowered_group_weights(self) -> List[np.ndarray]:
        """Per-group GEMM weight matrices ``((C/g)*Fy*Fx, K/g)``, copied."""
        return [w.copy() for w in self._lowered_weights()]

    def _lowered_weights(self) -> List[np.ndarray]:
        """Memoized per-group lowered weight matrices (frozen post-build)."""
        if self._lowered is None:
            k_g = self.weight_q.shape[0] // self.groups
            self._lowered = [
                self.weight_q[g * k_g : (g + 1) * k_g].reshape(k_g, -1).T.copy()
                for g in range(self.groups)
            ]
        return self._lowered

    def acc_bound(self) -> int:
        """Largest possible |partial sum| of this layer's integer GEMM.

        Every accumulation order is bounded by
        ``q_max * max_k sum_c |w_q[c, k]|`` (activations are uint
        ``act_bits``).  When this bound fits the float32 (2**24) or
        float64 (2**53) exact-integer range, a BLAS GEMM in that dtype is
        *exact* — every intermediate is an integer below the mantissa
        limit — and therefore bit-identical to the int64 reference
        regardless of BLAS blocking, threading or batch shape.
        """
        q_max = (1 << self.act_bits) - 1
        col_sums = np.abs(self.weight_q.reshape(self.out_channels, -1)).sum(axis=1)
        return int(q_max) * int(col_sums.max(initial=0))

    def _blas_weight_matrix(self) -> Optional[List[np.ndarray]]:
        """The per-group lowered weights in the widest-exact BLAS dtype.

        ``None`` means no float dtype can represent the datapath exactly
        (accumulator bound >= 2**53) and callers must fall back to the
        int64 reference GEMM.
        """
        if not self._blas_checked:
            bound = self.acc_bound()
            if bound < (1 << 24):
                self._blas_weights = [w.astype(np.float32) for w in self._lowered_weights()]
            elif bound < (1 << 53):
                self._blas_weights = [w.astype(np.float64) for w in self._lowered_weights()]
            else:  # pragma: no cover - needs a >2**45-element reduction
                self._blas_weights = None
            self._blas_checked = True
        return self._blas_weights

    def _blas_weights_nhwc(self) -> Optional[List[np.ndarray]]:
        """Lowered BLAS weights with the reduction re-ordered ``(fy,fx,c)``.

        The channels-last GEMM of :meth:`accumulate_nhwc` sums exactly
        the same integer products in a different order, which an exact
        datapath cannot observe — so the accumulators stay bit-identical
        while the operand gather runs over contiguous channel runs.  One
        matrix per group, each ``(Fy*Fx*(C/g), K/g)``.
        """
        if self._blas_weights_hwc is None and self._blas_weight_matrix() is not None:
            k_g = self.weight_q.shape[0] // self.groups
            dtype = self._blas_weights[0].dtype
            self._blas_weights_hwc = [
                np.ascontiguousarray(
                    self.weight_q[g * k_g : (g + 1) * k_g]
                    .transpose(2, 3, 1, 0)
                    .reshape(-1, k_g)
                ).astype(dtype)
                for g in range(self.groups)
            ]
        return self._blas_weights_hwc

    def accumulate_nhwc(self, x: np.ndarray) -> np.ndarray:
        """Integer-*valued* accumulators ``(N*OH*OW, K)`` via an exact BLAS GEMM.

        ``x`` is the channels-last ``(N, H, W, C)`` float activation
        tensor.  Bit-identical values to the int64 GEMM in
        :meth:`_forward_quantized` (see :meth:`acc_bound` for why, and
        :meth:`_blas_weights_nhwc` for the reduction re-ordering), but
        runs as one sgemm/dgemm over a channels-contiguous operand
        gather — the batched injection runtime's hot loop.  Accumulator
        rows are ordered ``(n, oy, ox)`` exactly like the channels-first
        path, so per-element flip masks line up between the runtimes.

        The result stays in the BLAS float dtype: every entry is an
        exactly-represented integer, and so is every entry after an
        MSB-window bit flip (which lands within the 24-bit PSUM range) —
        converting the full tensor to int64 would only add memory
        traffic.  Falls back to the int64 reference on the (unreachable
        in practice) overflow case.
        """
        w_groups = self._blas_weights_nhwc()
        if w_groups is None:  # pragma: no cover - see _blas_weight_matrix
            x_nchw = np.ascontiguousarray(x.transpose(0, 3, 1, 2))
            return self._grouped_int_gemm(self.quantize_input(x_nchw))
        if self.in_scale is None:
            raise QuantizationError(f"layer {self.name} is not calibrated")
        q_max = (1 << self.act_bits) - 1
        # Same float64 divide/round/clip as quantize_input (bit-identical
        # quantization decisions), fused in place to avoid temporaries.
        x_q = x / self.in_scale
        np.round(x_q, out=x_q)
        np.clip(x_q, 0, q_max, out=x_q)
        x_q = x_q.astype(w_groups[0].dtype)
        fy, fx = self.weight_q.shape[2], self.weight_q.shape[3]
        if self.groups == 1:
            cols = _im2col_nhwc(x_q, fy, fx, stride=self.stride, padding=self.padding)
            return cols @ w_groups[0]
        c_g = self.weight_q.shape[1]
        accs = []
        for g, w in enumerate(w_groups):
            cols = _im2col_nhwc(
                np.ascontiguousarray(x_q[..., g * c_g : (g + 1) * c_g]),
                fy,
                fx,
                stride=self.stride,
                padding=self.padding,
            )
            accs.append(cols @ w)
        return np.concatenate(accs, axis=1)

    def accumulate_exact(self, x: np.ndarray) -> np.ndarray:
        """:meth:`accumulate_nhwc` for a channels-first ``(N, C, H, W)`` input."""
        return self.accumulate_nhwc(np.ascontiguousarray(x.transpose(0, 2, 3, 1)))

    def epilogue_nhwc(self, acc: np.ndarray, n: int, h: int, w: int) -> np.ndarray:
        """Dequantize raw accumulators ``(n*OH*OW, K)`` into ``(n, OH, OW, K)``."""
        _, _, fy, fx = self.weight_q.shape
        out = acc.astype(np.float64)
        out *= self.in_scale * self.w_scale
        out += self.bias[None, :]
        oh, ow = F.conv_out_hw(h, w, fy, fx, self.stride, self.padding)
        return out.reshape(n, oh, ow, self.out_channels)

    def epilogue(self, acc: np.ndarray, n: int, h: int, w: int) -> np.ndarray:
        """Dequantize raw accumulators ``(n*OH*OW, K)`` into the float output."""
        return self.epilogue_nhwc(acc, n, h, w).transpose(0, 3, 1, 2)

    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.in_scale is None:
            return self._forward_calibrate(x)
        return self._forward_quantized(x)

    __call__ = forward

    def _forward_calibrate(self, x: np.ndarray) -> np.ndarray:
        self._observed_max = max(self._observed_max, float(x.max(initial=0.0)))
        if self.groups == 1:
            out, _ = F.conv2d_forward(x, self.weight_float, self.bias, self.stride, self.padding)
            return out
        c_g = self.weight_float.shape[1]
        k_g = self.weight_float.shape[0] // self.groups
        outs = []
        for g in range(self.groups):
            out_g, _ = F.conv2d_forward(
                x[:, g * c_g : (g + 1) * c_g],
                self.weight_float[g * k_g : (g + 1) * k_g],
                self.bias[g * k_g : (g + 1) * k_g],
                self.stride,
                self.padding,
            )
            outs.append(out_g)
        return np.concatenate(outs, axis=1)

    def finalize_calibration(self) -> None:
        """Fix the activation scale from the observed calibration range."""
        if self._observed_max <= 0:
            raise QuantizationError(
                f"layer {self.name}: no positive activations observed during calibration"
            )
        self.in_scale = self._observed_max / ((1 << self.act_bits) - 1)

    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        """uint8-quantize a (non-negative) activation tensor."""
        if self.in_scale is None:
            raise QuantizationError(f"layer {self.name} is not calibrated")
        q_max = (1 << self.act_bits) - 1
        return np.clip(np.round(x / self.in_scale), 0, q_max).astype(np.int64)

    def _grouped_int_gemm(self, x_q: np.ndarray) -> np.ndarray:
        """Reference int64 accumulators ``(N*OH*OW, K)`` from a quantized input.

        One dense im2col (channels are contiguous per group, so each
        group's operands are a column slice) followed by one GEMM per
        group; the single-group case is the plain lowered GEMM.
        """
        _, _, fy, fx = self.weight_q.shape
        cols = im2col(x_q, fy, fx, stride=self.stride, padding=self.padding)
        if self.record:
            self.recorded_cols = cols
        lowered = self._lowered_weights()
        if self.groups == 1:
            return cols @ lowered[0]  # (N*OH*OW, K) int64
        return np.concatenate(
            [
                cols[:, start:stop] @ w
                for (start, stop), w in zip(self.group_col_spans(), lowered)
            ],
            axis=1,
        )

    def _forward_quantized(self, x: np.ndarray) -> np.ndarray:
        n, _, h, w = x.shape
        acc = self._grouped_int_gemm(self.quantize_input(x))
        if self.injector is not None:
            acc = self.injector(acc, self)
        return self.epilogue(acc, n, h, w)


class _QBlock:
    """Quantized ResNet basic block (inference only)."""

    def __init__(self, block: BasicBlock, bits_fn: Callable[[str], int] = lambda name: 8) -> None:
        self.qconv1 = _fold_to_qconv(block.conv1, block.bn1, bits_fn(block.conv1.name))
        self.qconv2 = _fold_to_qconv(block.conv2, block.bn2, bits_fn(block.conv2.name))
        if block.shortcut_conv is not None:
            self.qshortcut: Optional[QuantizedConv] = _fold_to_qconv(
                block.shortcut_conv, block.shortcut_bn, bits_fn(block.shortcut_conv.name)
            )
        else:
            self.qshortcut = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = np.maximum(self.qconv1(x), 0.0)
        main = self.qconv2(main)
        residual = self.qshortcut(x) if self.qshortcut is not None else x
        return np.maximum(main + residual, 0.0)

    __call__ = forward

    def qconvs(self) -> List[QuantizedConv]:
        convs = [self.qconv1, self.qconv2]
        if self.qshortcut is not None:
            convs.append(self.qshortcut)
        return convs


def _fold_to_qconv(conv: Conv2d, bn: Optional[BatchNorm2d], n_bits: int = 8) -> QuantizedConv:
    weight, bias = fold_batchnorm(conv, bn)
    return QuantizedConv(
        name=conv.name,
        weight=weight,
        bias=bias,
        stride=conv.stride,
        padding=conv.padding,
        act_bits=n_bits,
        weight_bits=n_bits,
        groups=conv.groups,
    )


class _FlattenToConv(Module):
    """Head adapter: ``(N, C, H, W) -> (N, C*H*W, 1, 1)``.

    Replaces a head ``Flatten`` so the following lowered ``Linear`` (a
    1x1 :class:`QuantizedConv`) reads the flattened features as its input
    channels.  The channel order matches ``Flatten`` exactly (``C``
    outermost), so the conv weights are the Linear weights verbatim.
    """

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1, 1, 1)


class _PoolToConv(Module):
    """Head adapter: global average pooling kept in the conv layout.

    ``(N, C, H, W) -> (N, C, 1, 1)``, numerically the standard
    ``GlobalAvgPool`` but without dropping the spatial axes the lowered
    classifier conv consumes.
    """

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.mean(axis=(2, 3), keepdims=True)


def _linear_to_qconv(linear: Linear, n_bits: int = 8) -> QuantizedConv:
    """Lower a classifier ``Linear`` to a 1x1 :class:`QuantizedConv`.

    ``Linear`` computes ``x @ W + b`` with ``W`` of shape
    ``(in_features, out_features)``; the equivalent convolution has
    weights ``(out_features, in_features, 1, 1) = W.T`` applied to the
    ``(N, in_features, 1, 1)`` adapter output.  With this lowering the
    classifier head shares the integer MAC datapath — its accumulators
    are visible to TER simulation and to the fault injector like any
    conv layer's.
    """
    in_features, out_features = linear.weight.data.shape
    weight = np.ascontiguousarray(linear.weight.data.T).reshape(
        out_features, in_features, 1, 1
    )
    return QuantizedConv(
        name=linear.name,
        weight=weight,
        bias=linear.bias.data.copy(),
        stride=1,
        padding=0,
        act_bits=n_bits,
        weight_bits=n_bits,
    )


def _frozen(arr: np.ndarray) -> np.ndarray:
    """Mark a cached array read-only (shared across trials and campaigns)."""
    arr.flags.writeable = False
    return arr


def _windows_nhwc(x: np.ndarray, fy: int, fx: int, stride: int) -> np.ndarray:
    """Sliding ``(n, oh, ow, fy, fx, c)`` window view of an NHWC tensor."""
    n, h, w, c = x.shape
    oh = (h - fy) // stride + 1
    ow = (w - fx) // stride + 1
    s = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, oh, ow, fy, fx, c),
        strides=(s[0], s[1] * stride, s[2] * stride, s[1], s[2], s[3]),
        writeable=False,
    )


def _im2col_nhwc(
    x: np.ndarray, fy: int, fx: int, stride: int, padding: int
) -> np.ndarray:
    """Channels-last im2col: ``(N, H, W, C)`` -> ``(N*OH*OW, Fy*Fx*C)``.

    Same GEMM rows (ordered ``(n, oy, ox)``) as
    :func:`repro.arch.mapper.im2col`, but with the reduction axis ordered
    ``(fy, fx, c)`` so each gathered window row is ``fx * C`` contiguous
    elements instead of ``fx`` — the difference between a byte-wise and a
    cache-line-wise copy on channels-heavy layers.  Pair with
    :meth:`QuantizedConv._blas_weights_nhwc`, which re-orders the weight
    rows to match.
    """
    if padding:
        x = np.pad(x, ((0, 0), (padding, padding), (padding, padding), (0, 0)))
    windows = _windows_nhwc(x, fy, fx, stride)
    n, oh, ow = windows.shape[:3]
    return windows.reshape(n * oh * ow, fy * fx * x.shape[3])


def _maxpool_nhwc(x: np.ndarray, size: int, stride: int) -> np.ndarray:
    """Channels-last max pooling, bit-identical to the channels-first op.

    Max is an exact reduction (no rounding), so reading the same window
    values in a different memory order cannot change any output.
    """
    return _windows_nhwc(x, size, size, stride).max(axis=(3, 4))


def _to_nhwc(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(x.transpose(0, 2, 3, 1))


def _to_nchw(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(x.transpose(0, 3, 1, 2))


def _stack_trials(arr: np.ndarray, n_trials: int) -> np.ndarray:
    """Tile an ``(N, ...)`` tensor into a trial-major ``(T*N, ...)`` copy."""
    return np.broadcast_to(arr, (n_trials,) + arr.shape).reshape(
        (n_trials * arr.shape[0],) + arr.shape[1:]
    )


@dataclass
class FaultFreePass:
    """One recorded fault-free forward of a :class:`QuantizedNetwork`.

    The batched injection runtime's operand cache: campaigns over the
    same ``(network, inputs)`` pair share

    * ``op_outputs`` — each top-level op's output (channels-last, the
      stacked walk's native layout), so layers before the first injected
      layer cost nothing per campaign (the shared fault-free prefix);
    * ``acc`` / ``conv_out`` — every conv's raw integer accumulators and
      float output, so the *first* injected layer of a campaign re-uses
      the already-computed accumulators (its input is still fault-free)
      and only pays for the bit flips;
    * ``max_abs_acc`` — the per-layer full-batch accumulator maxima that
      fix the relative-mode flip window (the determinism contract: flip
      positions depend on the full injected batch, never on evaluation
      chunking).

    All stored arrays are read-only; consumers copy on write.
    """

    n_images: int
    op_outputs: List[np.ndarray] = field(default_factory=list)
    conv_out: Dict[str, np.ndarray] = field(default_factory=dict)
    acc: Dict[str, np.ndarray] = field(default_factory=dict)
    max_abs_acc: Dict[str, int] = field(default_factory=dict)

    def nbytes(self) -> int:
        """Approximate memory footprint (diagnostics; the pass LRU in
        :mod:`repro.faults.injection_job` is bounded by entry count)."""
        arrays = list(self.op_outputs) + list(self.conv_out.values()) + list(self.acc.values())
        return sum(a.nbytes for a in arrays)


@dataclass
class _LaneCtx:
    """Shared context of one pruning-runtime walk (see ``_lane_conv``)."""

    injectors: Sequence[Injector]
    injected: set
    prefix: FaultFreePass
    n_images: int
    stats: TrialBatchStats


class QuantizedNetwork:
    """Integer-inference version of a trained :class:`ClassifierNetwork`.

    Construction folds/quantizes every convolution *and* lowers the
    classifier head's ``Linear`` layers to 1x1 quantized convolutions, so
    the whole network — head included — runs on the integer MAC datapath
    under study.  Call :meth:`calibrate` with a representative batch
    before inference.

    ``bits_per_layer`` maps layer names to their quantization bit width
    (applied to both the symmetric weight quantizer and the unsigned
    activation quantizer); layers not listed use ``default_bits``.  This
    is the mixed-precision axis of the scenario registry
    (:mod:`repro.scenarios`).
    """

    def __init__(
        self,
        model: ClassifierNetwork,
        bits_per_layer: Optional[Dict[str, int]] = None,
        default_bits: int = 8,
    ) -> None:
        model.eval()
        self.name = model.name
        self.bits_per_layer = {str(k): int(v) for k, v in (bits_per_layer or {}).items()}
        self.default_bits = int(default_bits)
        if not 2 <= self.default_bits <= 16:
            raise QuantizationError(f"default_bits {default_bits} outside [2, 16]")
        for name, bits in self.bits_per_layer.items():
            if not 2 <= bits <= 16:
                raise QuantizationError(f"layer {name}: n_bits {bits} outside [2, 16]")
        self._ops: List[object] = []
        self._build(model.features)
        self._build_head(model.head)
        self._calibrated = False

    def layer_bits(self, name: str) -> int:
        """The quantization bit width of layer ``name``."""
        return self.bits_per_layer.get(name, self.default_bits)

    # ------------------------------------------------------------------ #
    def _build(self, features: Sequential) -> None:
        layers = list(features)
        i = 0
        while i < len(layers):
            layer = layers[i]
            if isinstance(layer, Conv2d):
                bn = None
                if i + 1 < len(layers) and isinstance(layers[i + 1], BatchNorm2d):
                    bn = layers[i + 1]
                    i += 1
                self._ops.append(_fold_to_qconv(layer, bn, self.layer_bits(layer.name)))
            elif isinstance(layer, BasicBlock):
                self._ops.append(_QBlock(layer, self.layer_bits))
            elif isinstance(layer, BatchNorm2d):
                raise QuantizationError("unfused BatchNorm without preceding conv")
            else:
                self._ops.append(layer)  # ReLU / pooling / etc. run in float
            i += 1

    def _build_head(self, head: Sequential) -> None:
        """Lower the classifier head onto the integer datapath.

        ``Flatten`` / ``GlobalAvgPool`` become shape adapters and every
        ``Linear`` becomes a 1x1 :class:`QuantizedConv`, so the head is
        covered by operand recording, TER simulation and fault injection
        exactly like the feature layers (the seed repro's float-head
        special case — which the MSB pass and the layer studies had to
        skip around — is gone).
        """
        for layer in head:
            if isinstance(layer, Flatten):
                self._ops.append(_FlattenToConv())
            elif isinstance(layer, GlobalAvgPool):
                self._ops.append(_PoolToConv())
            elif isinstance(layer, Linear):
                self._ops.append(_linear_to_qconv(layer, self.layer_bits(layer.name)))
            elif isinstance(layer, ReLU):
                self._ops.append(layer)
            else:
                raise QuantizationError(f"cannot lower head layer {layer!r}")

    # ------------------------------------------------------------------ #
    def qconvs(self, include_shortcuts: bool = False) -> List[QuantizedConv]:
        """Quantized conv layers in execution order (Fig. 8's unit)."""
        convs: List[QuantizedConv] = []
        for op in self._ops:
            if isinstance(op, QuantizedConv):
                convs.append(op)
            elif isinstance(op, _QBlock):
                for qc in op.qconvs():
                    if not include_shortcuts and "shortcut" in qc.name:
                        continue
                    convs.append(qc)
        return convs

    def gemm_ops(self) -> List[object]:
        """Every integer-GEMM op in execution order (the TER/BER unit).

        For a conv network these are exactly :meth:`qconvs`; token
        networks extend the family with matmul ops.  The shared surface
        the generalized TER pipeline iterates.
        """
        return list(self.qconvs())

    def _forward_features(self, x: np.ndarray) -> np.ndarray:
        for op in self._ops:
            if isinstance(op, (QuantizedConv, _QBlock)):
                x = op(x)
            elif isinstance(op, ReLU):
                x = np.maximum(x, 0.0)
            elif isinstance(op, Module):
                op.training = False
                x = op.forward(x)
            else:  # pragma: no cover - defensive
                raise TrainingError(f"unexpected op {op!r}")
        return x

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Full inference: the whole lowered pipeline, logits ``(N, classes)``."""
        out = self.forward_features(x)
        return out.reshape(out.shape[0], -1)

    __call__ = forward

    def forward_features(self, x: np.ndarray) -> np.ndarray:
        """The lowered op pipeline, head included, in the conv layout.

        Returns the final ``(N, classes, 1, 1)`` tensor; :meth:`forward`
        flattens it to logits.  Every injector hook — the classifier
        head's included — fires along the way.
        """
        if not self._calibrated:
            raise QuantizationError("call calibrate(batch) before inference")
        return self._forward_features(x)

    # ------------------------------------------------------------------ #
    def calibrate(self, x: np.ndarray) -> None:
        """One float pass to fix all activation scales."""
        self._forward_features(x)
        for qc in self.qconvs(include_shortcuts=True):
            qc.finalize_calibration()
        self._calibrated = True

    def set_injector(self, injector: Optional[Injector]) -> None:
        """Install (or clear) the fault hook on every conv layer."""
        for qc in self.qconvs(include_shortcuts=True):
            qc.injector = injector

    def set_recording(self, record: bool) -> None:
        """Toggle operand-stream recording on every conv layer."""
        for qc in self.qconvs(include_shortcuts=True):
            qc.record = record
            if not record:
                qc.recorded_cols = None

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        topk: int = 1,
        batch_size: int = 128,
        injector: Optional[Injector] = None,
    ) -> float:
        """Top-k accuracy of quantized inference, optionally fault-injected.

        Accumulates exact per-chunk *correct counts* (not per-chunk
        accuracy floats), so a short final chunk — a batch size that does
        not divide ``len(x)`` — can never skew the average.
        """
        self.set_injector(injector)
        try:
            correct = 0
            for start in range(0, x.shape[0], batch_size):
                xb = x[start : start + batch_size]
                yb = y[start : start + batch_size]
                logits = self.forward(xb)
                correct += F.topk_correct(logits, yb, topk=topk)
            return correct / x.shape[0]
        finally:
            self.set_injector(None)

    # ------------------------------------------------------------------ #
    # Trial-batched injection runtime
    # ------------------------------------------------------------------ #
    @staticmethod
    def _module_nhwc(op: Module, state: np.ndarray) -> np.ndarray:
        """A float feature-path module applied to a channels-last state.

        Max pooling runs natively channels-last (an exact reduction);
        any other module sees the standard channels-first tensor it was
        written for, via a transpose round trip.
        """
        if isinstance(op, MaxPool2d):
            return _maxpool_nhwc(state, op.size, op.stride)
        op.training = False
        return _to_nhwc(op.forward(_to_nchw(state)))

    def fault_free_pass(self, x: np.ndarray) -> FaultFreePass:
        """Record one fault-free forward as a :class:`FaultFreePass`.

        Convolutions run through :meth:`QuantizedConv.accumulate_nhwc`
        (exact channels-last BLAS GEMMs — bit-identical to the int64
        reference), so building the pass already costs a fraction of a
        serial forward.
        """
        if not self._calibrated:
            raise QuantizationError("call calibrate(batch) before inference")
        pass_ = FaultFreePass(n_images=x.shape[0])

        def run_conv(qc: QuantizedConv, xin: np.ndarray) -> np.ndarray:
            n, h, w, _ = xin.shape
            acc = qc.accumulate_nhwc(xin)
            out = qc.epilogue_nhwc(acc, n, h, w)
            pass_.acc[qc.name] = _frozen(acc)
            pass_.conv_out[qc.name] = _frozen(out)
            pass_.max_abs_acc[qc.name] = int(np.abs(acc).max(initial=0))
            return out

        state = _to_nhwc(x)
        for op in self._ops:
            if isinstance(op, QuantizedConv):
                state = run_conv(op, state)
            elif isinstance(op, _QBlock):
                main = np.maximum(run_conv(op.qconv1, state), 0.0)
                main = run_conv(op.qconv2, main)
                residual = (
                    run_conv(op.qshortcut, state) if op.qshortcut is not None else state
                )
                state = np.maximum(main + residual, 0.0)
            elif isinstance(op, ReLU):
                state = np.maximum(state, 0.0)
            elif isinstance(op, Module):
                state = self._module_nhwc(op, state)
            else:  # pragma: no cover - defensive, mirrors _forward_features
                raise TrainingError(f"unexpected op {op!r}")
            pass_.op_outputs.append(_frozen(state))
        return pass_

    @staticmethod
    def _op_injected(op: object, injected: set) -> bool:
        """Does this op contain a conv the campaign injects into?"""
        if isinstance(op, QuantizedConv):
            return op.name in injected
        if isinstance(op, _QBlock):
            return any(qc.name in injected for qc in op.qconvs())
        return False

    def _conv_trials(
        self,
        qc: QuantizedConv,
        state: np.ndarray,
        forked: bool,
        injectors: Sequence[Injector],
        injected: set,
        prefix: FaultFreePass,
    ) -> Tuple[np.ndarray, bool]:
        """One conv under the stacked-trial walk.

        Three cases: still fault-free (serve the cached output), fork
        point (re-use the cached fault-free accumulators, pay only for
        the per-trial flips), or already forked (one ``(T*N, ...)`` GEMM
        for all trials, then per-trial flips).
        """
        n_trials = len(injectors)
        if not forked:
            if qc.name not in injected:
                return prefix.conv_out[qc.name], False
            n, h, w, _ = state.shape
            acc0 = prefix.acc[qc.name]
            acc = np.concatenate([inj(acc0, qc) for inj in injectors], axis=0)
            return qc.epilogue_nhwc(acc, n_trials * n, h, w), True
        tn, h, w, _ = state.shape
        acc = qc.accumulate_nhwc(state)
        if qc.name in injected:
            per_trial = acc.reshape(n_trials, -1, acc.shape[1])
            acc = np.concatenate(
                [injectors[t](per_trial[t], qc) for t in range(n_trials)], axis=0
            )
        return qc.epilogue_nhwc(acc, tn, h, w), True

    def _block_trials(
        self,
        block: _QBlock,
        state: np.ndarray,
        forked: bool,
        injectors: Sequence[Injector],
        injected: set,
        prefix: FaultFreePass,
    ) -> Tuple[np.ndarray, bool]:
        """A residual block under the stacked-trial walk.

        Main path and shortcut may fork independently (e.g. only the
        shortcut conv is injected); whichever side stays fault-free is
        tiled to the trial axis before the residual add.
        """
        n_trials = len(injectors)
        main, f_main = self._conv_trials(
            block.qconv1, state, forked, injectors, injected, prefix
        )
        main = np.maximum(main, 0.0)
        main, f_main = self._conv_trials(
            block.qconv2, main, f_main, injectors, injected, prefix
        )
        if block.qshortcut is not None:
            short, f_short = self._conv_trials(
                block.qshortcut, state, forked, injectors, injected, prefix
            )
        else:
            short, f_short = state, forked
        if f_main and not f_short:
            short = _stack_trials(short, n_trials)
        elif f_short and not f_main:
            main = _stack_trials(main, n_trials)
        return np.maximum(main + short, 0.0), f_main or f_short

    def _prepare_trials(
        self,
        x: np.ndarray,
        injectors: Sequence[Injector],
        prefix: Optional[FaultFreePass],
    ) -> Tuple[set, FaultFreePass]:
        """Shared validation of the trial-batched entry points."""
        if not self._calibrated:
            raise QuantizationError("call calibrate(batch) before inference")
        if not injectors:
            raise QuantizationError("need at least one trial injector")
        tables = [dict(getattr(inj, "ber_per_layer")) for inj in injectors]
        if any(table != tables[0] for table in tables[1:]):
            raise QuantizationError(
                "trial injectors must share one BER table (trials differ by seed only)"
            )
        injected = {name for name, ber in tables[0].items() if ber > 0.0}
        prefix = prefix if prefix is not None else self.fault_free_pass(x)
        if prefix.n_images != x.shape[0]:
            raise QuantizationError(
                f"fault-free pass covers {prefix.n_images} images, got {x.shape[0]}"
            )
        return injected, prefix

    def _forward_trials_stacked(
        self,
        x: np.ndarray,
        injectors: Sequence[Injector],
        injected: set,
        prefix: FaultFreePass,
    ) -> np.ndarray:
        """The legacy always-stacked walk (``REPRO_INJECTION_PRUNE=0``).

        Every trial runs every post-fork layer, redundant or not — the
        conformance baseline the pruning lanes walk is proven
        bit-identical against.
        """
        state, forked = _to_nhwc(x), False
        for i, op in enumerate(self._ops):
            if not forked and not self._op_injected(op, injected):
                # Shared fault-free prefix: every op before the fork —
                # convs, blocks, activations, pooling — is served from
                # the recorded pass instead of recomputed.
                state = prefix.op_outputs[i]
            elif isinstance(op, QuantizedConv):
                state, forked = self._conv_trials(
                    op, state, forked, injectors, injected, prefix
                )
            elif isinstance(op, _QBlock):
                state, forked = self._block_trials(
                    op, state, forked, injectors, injected, prefix
                )
            elif isinstance(op, ReLU):
                state = np.maximum(state, 0.0)
            elif isinstance(op, Module):
                state = self._module_nhwc(op, state)
            else:  # pragma: no cover - defensive, mirrors _forward_features
                raise TrainingError(f"unexpected op {op!r}")
        if not forked:
            state = _stack_trials(state, len(injectors))
        return _to_nchw(state)

    # ------------------------------------------------------------------ #
    # Pruning/dedup lanes walk
    #
    # Trials are partitioned into a fault-free *lane* (assignment -1,
    # served entirely from the recorded pass — no tensors, no GEMMs) and
    # diverged *classes* 0..A-1 of mutually bit-identical trials, each
    # owning one (N, ...) slice of a stacked state tensor.  At an
    # injected conv every trial draws its flip plan (preserving the
    # serial RNG streams and flip accounting exactly); trials whose
    # plans select nothing stay in — or, combined with pruning, rejoin —
    # the lane they were in, and trials with byte-identical plans on the
    # same base class collapse into one representative.  After every
    # top-level op, classes whose tensors have returned to the
    # fault-free values (masked faults) dissolve back into the
    # fault-free lane; they re-fork from the cached accumulators if a
    # later layer is injected, which is what makes pruning exact
    # everywhere.  Exactness of the whole walk is inductive: every class
    # tensor is produced by the same deterministic integer ops, from the
    # same inputs, as each member trial's tensor in the legacy walk.
    # ------------------------------------------------------------------ #
    def _lane_conv(
        self,
        qc: QuantizedConv,
        lanes: Tuple[Optional[np.ndarray], List[int], List[int]],
        ctx: _LaneCtx,
    ) -> Tuple[Optional[np.ndarray], List[int], List[int]]:
        """One conv under the lanes walk.

        Non-injected: one stacked GEMM over the diverged classes (the
        fault-free lane costs nothing).  Injected: draw every trial's
        flip plan, re-partition trials by ``(source class, plan bytes)``,
        and materialize one accumulator tensor per distinct partition —
        fault-free-lane trials fork from the cached prefix accumulators,
        so a trial only ever pays for layers where its faults are live.
        """
        state, assign, flips = lanes
        n_classes = len(flips)
        n_trials = len(ctx.injectors)
        acc = qc.accumulate_nhwc(state) if n_classes else None
        rows = acc.shape[0] // n_classes if n_classes else 0
        ff_out = ctx.prefix.conv_out[qc.name]
        oh, ow, k = ff_out.shape[1], ff_out.shape[2], ff_out.shape[3]

        def dequant(acc_new: np.ndarray) -> np.ndarray:
            # epilogue_nhwc with the output shape taken from the
            # recorded pass (fresh forks have no input tensor to derive
            # it from); same op sequence, bit-identical.
            out = acc_new.astype(np.float64)
            out *= qc.in_scale * qc.w_scale
            out += qc.bias[None, :]
            return out.reshape(-1, oh, ow, k)

        if qc.name not in ctx.injected:
            if not n_classes:
                return lanes
            return dequant(acc), assign, flips

        base_ff = ctx.prefix.acc[qc.name]
        plans = [
            inj.flip_plan(
                base_ff if assign[t] < 0 else acc[assign[t] * rows : (assign[t] + 1) * rows],
                qc,
            )
            for t, inj in enumerate(ctx.injectors)
        ]
        seen: Dict[Tuple[int, Optional[Tuple[bytes, bytes]]], int] = {}
        reps: List[np.ndarray] = []
        new_flips: List[int] = []
        new_assign = [-1] * n_trials
        for t, plan in enumerate(plans):
            old = assign[t]
            if old < 0 and plan is None:
                # Zero-effective-flip draw: the trial stays fault-free.
                ctx.stats.deduped += 1
                continue
            sig = None if plan is None else (plan[0].tobytes(), plan[1].tobytes())
            c = seen.get((old, sig))
            if c is None:
                base = base_ff if old < 0 else acc[old * rows : (old + 1) * rows]
                c = len(reps)
                seen[(old, sig)] = c
                reps.append(ctx.injectors[t].apply_plan(base, plan))
                new_flips.append(
                    (flips[old] if old >= 0 else 0)
                    + (0 if plan is None else len(plan[1]))
                )
            else:
                ctx.stats.deduped += 1
            new_assign[t] = c
        if not reps:
            return None, new_assign, []
        acc_new = reps[0] if len(reps) == 1 else np.concatenate(reps, axis=0)
        return dequant(acc_new), new_assign, new_flips

    def _lane_block(
        self,
        block: _QBlock,
        lanes: Tuple[Optional[np.ndarray], List[int], List[int]],
        ff_in: np.ndarray,
        ctx: _LaneCtx,
    ) -> Tuple[Optional[np.ndarray], List[int], List[int]]:
        """A residual block under the lanes walk.

        Main path and shortcut walk independently from the block-input
        partition; the residual add joins them over the common
        refinement of the two partitions (a trial's joined class is the
        pair of its main and shortcut classes).
        """
        main = self._lane_conv(block.qconv1, lanes, ctx)
        if main[0] is not None:
            main = (np.maximum(main[0], 0.0), main[1], main[2])
        main = self._lane_conv(block.qconv2, main, ctx)
        if block.qshortcut is not None:
            short = self._lane_conv(block.qshortcut, lanes, ctx)
            short_ff = ctx.prefix.conv_out[block.qshortcut.name]
        else:
            short = lanes
            short_ff = ff_in
        main_ff = ctx.prefix.conv_out[block.qconv2.name]
        m_state, m_assign, m_flips = main
        s_state, s_assign, s_flips = short
        n = ctx.n_images
        seen: Dict[Tuple[int, int], int] = {}
        outs: List[np.ndarray] = []
        new_flips: List[int] = []
        new_assign = [-1] * len(m_assign)
        for t in range(len(m_assign)):
            key = (m_assign[t], s_assign[t])
            if key == (-1, -1):
                continue
            c = seen.get(key)
            if c is None:
                m_t = main_ff if key[0] < 0 else m_state[key[0] * n : (key[0] + 1) * n]
                s_t = short_ff if key[1] < 0 else s_state[key[1] * n : (key[1] + 1) * n]
                c = len(outs)
                seen[key] = c
                outs.append(np.maximum(m_t + s_t, 0.0))
                new_flips.append(
                    (m_flips[key[0]] if key[0] >= 0 else 0)
                    + (s_flips[key[1]] if key[1] >= 0 else 0)
                )
            new_assign[t] = c
        if not outs:
            return None, new_assign, []
        return np.concatenate(outs, axis=0), new_assign, new_flips

    def _lane_prune(
        self,
        lanes: Tuple[Optional[np.ndarray], List[int], List[int]],
        ff_out: np.ndarray,
        ctx: _LaneCtx,
    ) -> Tuple[Optional[np.ndarray], List[int], List[int]]:
        """Masked-trial checkpoint after one top-level op.

        A diverged class whose tensor equals the recorded fault-free
        output has had every injected fault masked (typically by ReLU
        or pooling); its trials dissolve back into the fault-free lane
        and stop paying for the remaining layers.  Missing a prune is
        only a missed optimization, so the compare is skipped for
        classes carrying many flips (see ``_PRUNE_CHECK_MAX_FLIPS``).
        """
        state, assign, flips = lanes
        n_classes = len(flips)
        if not n_classes:
            return lanes
        n = ctx.n_images
        drop = {
            c
            for c in range(n_classes)
            if flips[c] <= _PRUNE_CHECK_MAX_FLIPS
            and np.array_equal(state[c * n : (c + 1) * n], ff_out)
        }
        if not drop:
            return lanes
        kept = [c for c in range(n_classes) if c not in drop]
        remap = {c: j for j, c in enumerate(kept)}
        new_assign = []
        for c in assign:
            if c >= 0 and c in drop:
                ctx.stats.pruned += 1
                new_assign.append(-1)
            else:
                new_assign.append(remap[c] if c >= 0 else -1)
        if not kept:
            return None, new_assign, []
        state_new = np.concatenate([state[c * n : (c + 1) * n] for c in kept], axis=0)
        return state_new, new_assign, [flips[c] for c in kept]

    def _forward_trials_lanes(
        self,
        x: np.ndarray,
        injectors: Sequence[Injector],
        injected: set,
        prefix: FaultFreePass,
        stats: TrialBatchStats,
    ) -> Tuple[Optional[np.ndarray], List[int], List[int]]:
        """The pruning/dedup walk over the whole lowered pipeline."""
        ctx = _LaneCtx(injectors, injected, prefix, x.shape[0], stats)
        lanes: Tuple[Optional[np.ndarray], List[int], List[int]] = (
            None,
            [-1] * len(injectors),
            [],
        )
        for i, op in enumerate(self._ops):
            if isinstance(op, QuantizedConv):
                lanes = self._lane_conv(op, lanes, ctx)
            elif isinstance(op, _QBlock):
                ff_in = prefix.op_outputs[i - 1] if i else _to_nhwc(x)
                lanes = self._lane_block(op, lanes, ff_in, ctx)
            elif isinstance(op, ReLU):
                if lanes[0] is not None:
                    lanes = (np.maximum(lanes[0], 0.0), lanes[1], lanes[2])
            elif isinstance(op, Module):
                if lanes[0] is not None:
                    lanes = (self._module_nhwc(op, lanes[0]), lanes[1], lanes[2])
            else:  # pragma: no cover - defensive, mirrors _forward_features
                raise TrainingError(f"unexpected op {op!r}")
            lanes = self._lane_prune(lanes, prefix.op_outputs[i], ctx)
        return lanes

    def forward_trials(
        self,
        x: np.ndarray,
        injectors: Sequence[Injector],
        prefix: Optional[FaultFreePass] = None,
        prune: Optional[bool] = None,
        stats: Optional[TrialBatchStats] = None,
    ) -> np.ndarray:
        """All trials' quantized features in one stacked forward pass.

        ``injectors`` holds one per-trial fault hook (one seeded
        :class:`~repro.faults.injection.BitFlipInjector` per trial);
        each must expose the campaign's common ``ber_per_layer`` table.
        Layers before the first injected layer are shared fault-free
        work served from ``prefix``.  Under the default pruning runtime
        (``prune``/``REPRO_INJECTION_PRUNE``, see
        :func:`injection_pruning_enabled`) trials additionally exit the
        stacked forward whenever their faults are masked or their flip
        draws duplicate another trial's, with work-avoidance events
        recorded into ``stats``; the legacy walk runs every trial
        through every post-fork layer.  Both return the final pipeline
        tensors shaped ``(T*N, classes, 1, 1)`` in trial-major order,
        bit-identical to T independent serial forwards.
        """
        injected, prefix = self._prepare_trials(x, injectors, prefix)
        if not injection_pruning_enabled(prune):
            return self._forward_trials_stacked(x, injectors, injected, prefix)
        stats = stats if stats is not None else TrialBatchStats()
        state, assign, _ = self._forward_trials_lanes(x, injectors, injected, prefix, stats)
        n = x.shape[0]
        ff_out = prefix.op_outputs[-1]
        parts = [ff_out if c < 0 else state[c * n : (c + 1) * n] for c in assign]
        return _to_nchw(np.concatenate(parts, axis=0))

    def evaluate_trials(
        self,
        x: np.ndarray,
        y: np.ndarray,
        injectors: Sequence[Injector],
        topk: int = 1,
        batch_size: int = 128,
        prefix: Optional[FaultFreePass] = None,
        prune: Optional[bool] = None,
        stats: Optional[TrialBatchStats] = None,
    ) -> List[float]:
        """Per-trial top-k accuracies from one stacked forward pass.

        The stacked walk covers the whole lowered pipeline (classifier
        head included), so scoring is one flatten + top-k per trial —
        and under the pruning runtime, one per *class* of bit-identical
        trials, with exact correct-counts scattered back per trial.
        Accuracies are bit-identical to running each trial through
        :meth:`evaluate` at any batch size: every per-sample logit is an
        exactly-dequantized integer accumulator, unaffected by chunking.
        """
        injected, prefix = self._prepare_trials(x, injectors, prefix)
        n = x.shape[0]

        def chunked_correct(logits: np.ndarray) -> int:
            correct = 0
            for start in range(0, n, batch_size):
                correct += F.topk_correct(
                    logits[start : start + batch_size], y[start : start + batch_size], topk
                )
            return correct

        if not injection_pruning_enabled(prune):
            features = self._forward_trials_stacked(x, injectors, injected, prefix)
            logits = features.reshape(len(injectors), n, -1)
            return [chunked_correct(logits[t]) / n for t in range(len(injectors))]
        stats = stats if stats is not None else TrialBatchStats()
        state, assign, _ = self._forward_trials_lanes(x, injectors, injected, prefix, stats)
        counts: Dict[int, int] = {}
        accuracies: List[float] = []
        for c in assign:
            if c not in counts:
                feat = prefix.op_outputs[-1] if c < 0 else state[c * n : (c + 1) * n]
                counts[c] = chunked_correct(_to_nchw(feat).reshape(n, -1))
            accuracies.append(counts[c] / n)
        return accuracies


# ---------------------------------------------------------------------- #
# First-class matmul lowering: transformer GEMMs on the integer datapath
# ---------------------------------------------------------------------- #
class QuantizedMatmul:
    """A static-weight GEMM (``x @ W + b``) on the integer MAC datapath.

    The first-class generalization of the ``Linear``-to-1x1-conv lowering:
    any ``(..., in_features)`` tensor — 2-D classifier features or 3-D
    token sequences — executes as one int64 GEMM against the per-tensor
    symmetric quantized weight matrix, with the same fault-hook and
    operand-recording surface as :class:`QuantizedConv` (the accumulator
    tensor flattened to ``(rows, out_features)``, one row per output
    vector).

    Unlike conv activations (post-ReLU, non-negative), matmul inputs may
    be signed — LayerNorm outputs feed Q/K/V projections directly.  The
    calibration pass records the signedness and the quantizer switches to
    symmetric signed (``[-q_max, q_max]``) when any negative activation
    was observed; READ-reorder applicability over such signed operand
    streams is exactly what the transformer suite measures per GEMM.
    """

    def __init__(
        self,
        name: str,
        weight: np.ndarray,
        bias: np.ndarray,
        act_bits: int = 8,
        weight_bits: int = 8,
    ) -> None:
        if weight.ndim != 2:
            raise QuantizationError(f"matmul {name}: weight must be 2-D, got {weight.shape}")
        self.name = name
        self.weight_float = weight
        self.weight_q, self.w_scale = quantize_weights(weight, n_bits=weight_bits)
        self.bias = bias
        self.act_bits = act_bits
        self.weight_bits = weight_bits
        self.groups = 1
        self.in_scale: Optional[float] = None
        self.act_signed = False
        self._observed_max = 0.0
        self._observed_min = 0.0
        self.injector: Optional[Injector] = None
        self.record = False
        self.recorded_cols: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @property
    def in_features(self) -> int:
        return self.weight_q.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight_q.shape[1]

    @property
    def n_macs_per_output(self) -> int:
        """Reduction length N of Eq. 1 (one MAC per input feature)."""
        return self.weight_q.shape[0]

    def group_col_spans(self) -> List[Tuple[int, int]]:
        return [(0, self.in_features)]

    def lowered_weight_matrix(self) -> np.ndarray:
        """Quantized GEMM weights ``(in_features, out_features)`` for READ planning."""
        return self.weight_q.copy()

    def lowered_group_weights(self) -> List[np.ndarray]:
        return [self.weight_q.copy()]

    def _act_q_max(self) -> int:
        return (1 << (self.act_bits - 1)) - 1 if self.act_signed else (1 << self.act_bits) - 1

    def acc_bound(self) -> int:
        """Largest possible |partial sum| (see :meth:`QuantizedConv.acc_bound`)."""
        col_sums = np.abs(self.weight_q).sum(axis=0)
        return int(self._act_q_max()) * int(col_sums.max(initial=0))

    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.in_scale is None:
            return self._forward_calibrate(x)
        return self._forward_quantized(x)

    __call__ = forward

    def _forward_calibrate(self, x: np.ndarray) -> np.ndarray:
        self._observed_max = max(self._observed_max, float(np.abs(x).max(initial=0.0)))
        self._observed_min = min(self._observed_min, float(x.min(initial=0.0)))
        return x @ self.weight_float + self.bias

    def finalize_calibration(self) -> None:
        """Fix the activation scale — and signedness — from calibration."""
        if self._observed_max <= 0:
            raise QuantizationError(
                f"matmul {self.name}: no nonzero activations observed during calibration"
            )
        self.act_signed = self._observed_min < 0.0
        self.in_scale = self._observed_max / self._act_q_max()

    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        if self.in_scale is None:
            raise QuantizationError(f"matmul {self.name} is not calibrated")
        q_max = self._act_q_max()
        q_min = -q_max if self.act_signed else 0
        return np.clip(np.round(x / self.in_scale), q_min, q_max).astype(np.int64)

    def _forward_quantized(self, x: np.ndarray) -> np.ndarray:
        lead = x.shape[:-1]
        x_q = self.quantize_input(x).reshape(-1, self.in_features)
        if self.record:
            self.recorded_cols = x_q
        acc = x_q @ self.weight_q
        if self.injector is not None:
            acc = self.injector(acc, self)
        out = acc.astype(np.float64)
        out *= self.in_scale * self.w_scale
        out += self.bias[None, :]
        return out.reshape(lead + (self.out_features,))


class QuantizedDynamicMatmul:
    """An activation-activation GEMM (``A @ B``) on the integer datapath.

    The attention products — ``Q @ K^T`` and ``softmax @ V`` — have *no*
    static weight: both operands are runtime tensors, each with its own
    calibrated per-tensor scale and signedness.  The op executes one
    batched int64 GEMM per forward; the raw accumulators, flattened to
    ``(batch*rows, cols)``, pass through the same injector hook as every
    other GEMM, and recording captures both quantized operand tensors —
    per *instance* (batch element), because the systolic array sees a
    different stationary matrix per image.

    ``extra_scale`` folds a constant factor (the attention ``1/sqrt(d)``)
    into the dequantization epilogue, keeping the integer datapath pure.
    """

    def __init__(self, name: str, act_bits: int = 8, extra_scale: float = 1.0) -> None:
        self.name = name
        self.act_bits = act_bits
        self.weight_bits = act_bits  # the stationary operand is an activation too
        self.extra_scale = float(extra_scale)
        self.groups = 1
        self.a_scale: Optional[float] = None
        self.b_scale: Optional[float] = None
        self.a_signed = False
        self.b_signed = False
        self._a_max = 0.0
        self._a_min = 0.0
        self._b_max = 0.0
        self._b_min = 0.0
        self._k: Optional[int] = None
        self.injector: Optional[Injector] = None
        self.record = False
        #: When ``record`` is set: ``(a_q, b_q)`` int64 operand tensors of
        #: the most recent forward — ``a_q`` is ``(N, rows, K)`` moving
        #: operands, ``b_q`` is ``(N, K, cols)`` stationary operands.
        self.recorded_operands: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------ #
    @property
    def in_scale(self) -> Optional[float]:
        """Moving-operand scale (parity with the static-GEMM surface)."""
        return self.a_scale

    @property
    def n_macs_per_output(self) -> int:
        """Reduction length K, fixed by the first (calibration) forward."""
        if self._k is None:
            raise QuantizationError(f"matmul {self.name} has not seen a forward pass")
        return self._k

    def group_col_spans(self) -> List[Tuple[int, int]]:
        return [(0, self.n_macs_per_output)]

    def _q_max(self, signed: bool) -> int:
        return (1 << (self.act_bits - 1)) - 1 if signed else (1 << self.act_bits) - 1

    def acc_bound(self) -> int:
        """Largest possible |partial sum| of the dynamic integer GEMM."""
        return self._q_max(self.a_signed) * self._q_max(self.b_signed) * self.n_macs_per_output

    # ------------------------------------------------------------------ #
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.shape[-1] != b.shape[-2]:
            raise QuantizationError(
                f"matmul {self.name}: inner dims differ ({a.shape} @ {b.shape})"
            )
        self._k = a.shape[-1]
        if self.a_scale is None:
            return self._forward_calibrate(a, b)
        return self._forward_quantized(a, b)

    __call__ = forward

    def _forward_calibrate(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self._a_max = max(self._a_max, float(np.abs(a).max(initial=0.0)))
        self._a_min = min(self._a_min, float(a.min(initial=0.0)))
        self._b_max = max(self._b_max, float(np.abs(b).max(initial=0.0)))
        self._b_min = min(self._b_min, float(b.min(initial=0.0)))
        return np.matmul(a, b) * self.extra_scale

    def finalize_calibration(self) -> None:
        if self._a_max <= 0 or self._b_max <= 0:
            raise QuantizationError(
                f"matmul {self.name}: no nonzero operands observed during calibration"
            )
        self.a_signed = self._a_min < 0.0
        self.b_signed = self._b_min < 0.0
        self.a_scale = self._a_max / self._q_max(self.a_signed)
        self.b_scale = self._b_max / self._q_max(self.b_signed)

    def _quantize(self, x: np.ndarray, scale: float, signed: bool) -> np.ndarray:
        q_max = self._q_max(signed)
        q_min = -q_max if signed else 0
        return np.clip(np.round(x / scale), q_min, q_max).astype(np.int64)

    def _forward_quantized(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a_q = self._quantize(a, self.a_scale, self.a_signed)
        b_q = self._quantize(b, self.b_scale, self.b_signed)
        if self.record:
            self.recorded_operands = (a_q, b_q)
        acc = np.matmul(a_q, b_q)
        out_shape = acc.shape
        acc = acc.reshape(-1, out_shape[-1])
        if self.injector is not None:
            acc = self.injector(acc, self)
        out = acc.astype(np.float64)
        out *= self.a_scale * self.b_scale * self.extra_scale
        return out.reshape(out_shape)


def _matmul_from_linear(linear: Linear, n_bits: int = 8) -> QuantizedMatmul:
    """Lower a ``Linear``/``TokenLinear`` to a :class:`QuantizedMatmul`."""
    return QuantizedMatmul(
        name=linear.name,
        weight=linear.weight.data.copy(),
        bias=linear.bias.data.copy(),
        act_bits=n_bits,
        weight_bits=n_bits,
    )


class _QAttention:
    """Quantized single-head self-attention (inference only).

    Q/K/V/output projections are static :class:`QuantizedMatmul` ops;
    the score and mix products are :class:`QuantizedDynamicMatmul` ops
    under the float module's :attr:`SelfAttention.dynamic_gemm_names`.
    Softmax runs in float between them — like ReLU and pooling in the
    conv pipeline, it is not in the MAC datapath under study.
    """

    def __init__(self, attn: SelfAttention, bits_fn: Callable[[str], int]) -> None:
        self.name = attn.name
        self.q = _matmul_from_linear(attn.q, bits_fn(attn.q.name))
        self.k = _matmul_from_linear(attn.k, bits_fn(attn.k.name))
        self.v = _matmul_from_linear(attn.v, bits_fn(attn.v.name))
        self.proj = _matmul_from_linear(attn.proj, bits_fn(attn.proj.name))
        qk_name, av_name = attn.dynamic_gemm_names
        self.qk = QuantizedDynamicMatmul(
            qk_name, act_bits=bits_fn(qk_name), extra_scale=attn.scale
        )
        self.av = QuantizedDynamicMatmul(av_name, act_bits=bits_fn(av_name))

    def forward(self, x: np.ndarray) -> np.ndarray:
        q = self.q(x)
        k = self.k(x)
        v = self.v(x)
        scores = self.qk(q, np.ascontiguousarray(k.transpose(0, 2, 1)))
        e = np.exp(scores - scores.max(axis=-1, keepdims=True))
        p = e / e.sum(axis=-1, keepdims=True)
        return self.proj(self.av(p, v))

    __call__ = forward

    def gemm_ops(self) -> List[object]:
        return [self.q, self.k, self.v, self.qk, self.av, self.proj]


class _QEncoderBlock:
    """Quantized pre-norm transformer encoder block (inference only)."""

    def __init__(self, block: EncoderBlock, bits_fn: Callable[[str], int]) -> None:
        self.name = block.name
        self.ln1 = block.ln1
        self.attn = _QAttention(block.attn, bits_fn)
        self.ln2 = block.ln2
        self.ffn1 = _matmul_from_linear(block.ffn1, bits_fn(block.ffn1.name))
        self.ffn2 = _matmul_from_linear(block.ffn2, bits_fn(block.ffn2.name))

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = x + self.attn(self.ln1.forward(x))
        return h + self.ffn2(np.maximum(self.ffn1(self.ln2.forward(h)), 0.0))

    __call__ = forward

    def gemm_ops(self) -> List[object]:
        return self.attn.gemm_ops() + [self.ffn1, self.ffn2]


class QuantizedTokenNetwork:
    """Integer-inference version of a trained token/transformer network.

    The transformer counterpart of :class:`QuantizedNetwork`: every GEMM
    — token embedding, Q/K/V/output projections, FFN layers, classifier
    head, and the two runtime activation-activation products per
    attention (``QK^T``, ``attention @ V``) — executes as an int64 GEMM
    through :class:`QuantizedMatmul` / :class:`QuantizedDynamicMatmul`,
    exposing raw accumulators to the same injector hook and operand
    recording as the conv pipeline.  Patch extraction, LayerNorm,
    softmax, residual adds and token pooling run in float (not in the MAC
    datapath).

    The class duck-types the :class:`QuantizedNetwork` surface the
    experiment/injection layers consume — ``calibrate`` / ``evaluate`` /
    ``evaluate_trials`` / ``fault_free_pass`` / ``set_injector`` /
    ``set_recording`` / ``qconvs`` (empty) / ``gemm_ops``.  The trial
    runtime is the serial loop: attention re-mixes every token after a
    flip, so the conv walk's masked-trial pruning has no analogue here.
    """

    def __init__(
        self,
        model: ClassifierNetwork,
        bits_per_layer: Optional[Dict[str, int]] = None,
        default_bits: int = 8,
    ) -> None:
        model.eval()
        self.name = model.name
        self.bits_per_layer = {str(k): int(v) for k, v in (bits_per_layer or {}).items()}
        self.default_bits = int(default_bits)
        if not 2 <= self.default_bits <= 16:
            raise QuantizationError(f"default_bits {default_bits} outside [2, 16]")
        for name, bits in self.bits_per_layer.items():
            if not 2 <= bits <= 16:
                raise QuantizationError(f"layer {name}: n_bits {bits} outside [2, 16]")
        self._ops: List[object] = []
        self._build(model.features)
        self._build_head(model.head)
        self._calibrated = False

    def layer_bits(self, name: str) -> int:
        """The quantization bit width of GEMM ``name``."""
        return self.bits_per_layer.get(name, self.default_bits)

    # ------------------------------------------------------------------ #
    def _build(self, features: Sequential) -> None:
        for layer in features:
            if isinstance(layer, EncoderBlock):
                self._ops.append(_QEncoderBlock(layer, self.layer_bits))
            elif isinstance(layer, Linear):  # TokenLinear included
                self._ops.append(_matmul_from_linear(layer, self.layer_bits(layer.name)))
            elif isinstance(layer, (PatchExtract, LayerNorm, ReLU, TokenMean)):
                self._ops.append(layer)
            else:
                raise QuantizationError(f"cannot lower token feature layer {layer!r}")

    def _build_head(self, head: Sequential) -> None:
        for layer in head:
            if isinstance(layer, Linear):
                self._ops.append(_matmul_from_linear(layer, self.layer_bits(layer.name)))
            elif isinstance(layer, (TokenMean, ReLU)):
                self._ops.append(layer)
            else:
                raise QuantizationError(f"cannot lower token head layer {layer!r}")

    # ------------------------------------------------------------------ #
    def qconvs(self, include_shortcuts: bool = False) -> List[QuantizedConv]:
        """No conv layers in a token network (parity with the conv surface)."""
        return []

    def gemm_ops(self) -> List[object]:
        """Every integer-GEMM op in execution order (the TER/BER unit)."""
        ops: List[object] = []
        for op in self._ops:
            if isinstance(op, (QuantizedMatmul, QuantizedDynamicMatmul)):
                ops.append(op)
            elif isinstance(op, _QEncoderBlock):
                ops.extend(op.gemm_ops())
        return ops

    # ------------------------------------------------------------------ #
    def _forward_features(self, x: np.ndarray) -> np.ndarray:
        for op in self._ops:
            if isinstance(op, (QuantizedMatmul, _QEncoderBlock)):
                x = op(x)
            elif isinstance(op, ReLU):
                x = np.maximum(x, 0.0)
            elif isinstance(op, Module):
                op.training = False
                x = op.forward(x)
            else:  # pragma: no cover - defensive
                raise TrainingError(f"unexpected op {op!r}")
        return x

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Full inference: logits ``(N, classes)``."""
        out = self.forward_features(x)
        return out.reshape(out.shape[0], -1)

    __call__ = forward

    def forward_features(self, x: np.ndarray) -> np.ndarray:
        """The lowered op pipeline; every injector hook fires along the way."""
        if not self._calibrated:
            raise QuantizationError("call calibrate(batch) before inference")
        return self._forward_features(x)

    # ------------------------------------------------------------------ #
    def calibrate(self, x: np.ndarray) -> None:
        """One float pass to fix every GEMM's operand scales."""
        self._forward_features(x)
        for op in self.gemm_ops():
            op.finalize_calibration()
        self._calibrated = True

    def set_injector(self, injector: Optional[Injector]) -> None:
        """Install (or clear) the fault hook on every GEMM op."""
        for op in self.gemm_ops():
            op.injector = injector

    def set_recording(self, record: bool) -> None:
        """Toggle operand recording on every GEMM op."""
        for op in self.gemm_ops():
            op.record = record
            if not record:
                if isinstance(op, QuantizedDynamicMatmul):
                    op.recorded_operands = None
                else:
                    op.recorded_cols = None

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        topk: int = 1,
        batch_size: int = 128,
        injector: Optional[Injector] = None,
    ) -> float:
        """Top-k accuracy of quantized inference, optionally fault-injected.

        Exact per-chunk correct counts, like
        :meth:`QuantizedNetwork.evaluate` — a short final chunk can never
        skew the average.
        """
        self.set_injector(injector)
        try:
            correct = 0
            for start in range(0, x.shape[0], batch_size):
                xb = x[start : start + batch_size]
                yb = y[start : start + batch_size]
                logits = self.forward(xb)
                correct += F.topk_correct(logits, yb, topk=topk)
            return correct / x.shape[0]
        finally:
            self.set_injector(None)

    def fault_free_pass(self, x: np.ndarray) -> FaultFreePass:
        """Record every GEMM's raw accumulators over one fault-free forward.

        Captured through the injector hook (the accumulators are fresh
        per forward, so freezing them is safe); ``max_abs_acc`` holds the
        full-batch maxima that fix relative-mode flip windows — the same
        determinism contract as the conv runtime.
        """
        if not self._calibrated:
            raise QuantizationError("call calibrate(batch) before inference")
        pass_ = FaultFreePass(n_images=x.shape[0])

        def capture(acc: np.ndarray, op: object) -> np.ndarray:
            pass_.acc[op.name] = _frozen(acc)
            pass_.max_abs_acc[op.name] = int(np.abs(acc).max(initial=0))
            return acc

        self.set_injector(capture)
        try:
            self._forward_features(x)
        finally:
            self.set_injector(None)
        return pass_

    def evaluate_trials(
        self,
        x: np.ndarray,
        y: np.ndarray,
        injectors: Sequence[Injector],
        topk: int = 1,
        batch_size: int = 128,
        prefix: Optional[FaultFreePass] = None,
        prune: Optional[bool] = None,
        stats: Optional[TrialBatchStats] = None,
    ) -> List[float]:
        """Per-trial top-k accuracies (serial trial loop).

        Injector streams are keyed per ``(seed, layer name)`` and draws
        are chunk-invariant, so the serial loop is bit-identical to any
        stacked evaluation — there is nothing for ``prefix`` / ``prune``
        to change; the arguments exist for runtime-surface parity.
        """
        if not self._calibrated:
            raise QuantizationError("call calibrate(batch) before inference")
        if not injectors:
            raise QuantizationError("need at least one trial injector")
        tables = [dict(getattr(inj, "ber_per_layer")) for inj in injectors]
        if any(table != tables[0] for table in tables[1:]):
            raise QuantizationError(
                "trial injectors must share one BER table (trials differ by seed only)"
            )
        return [
            self.evaluate(x, y, topk=topk, batch_size=batch_size, injector=inj)
            for inj in injectors
        ]


def quantize_model(
    model: ClassifierNetwork,
    bits_per_layer: Optional[Dict[str, int]] = None,
    default_bits: int = 8,
) -> object:
    """Quantize a trained network onto the integer MAC datapath.

    Dispatches on the model family: networks containing token modules
    (encoder blocks, token linears, patch extraction) lower to a
    :class:`QuantizedTokenNetwork`, everything else to the conv-pipeline
    :class:`QuantizedNetwork`.  Both expose the same experiment surface.
    """
    for module in model.modules():
        if isinstance(module, (EncoderBlock, TokenLinear, PatchExtract)):
            return QuantizedTokenNetwork(
                model, bits_per_layer=bits_per_layer, default_bits=default_bits
            )
    return QuantizedNetwork(
        model, bits_per_layer=bits_per_layer, default_bits=default_bits
    )
