"""Post-training int8 quantization and integer inference.

The accelerator executes convolutions as integer GEMMs: uint8 activations
(ReLU outputs), int8 weights, wide-accumulator partial sums (Section II).
This module turns a trained float :class:`~repro.nn.models.ClassifierNetwork`
into a :class:`QuantizedNetwork` that

* folds each batch-norm into its preceding convolution (what a deployment
  compiler does — and what determines the weight *signs* READ reorders);
* quantizes weights per-tensor symmetric int8 and activations per-tensor
  uint8 (scales from a calibration batch);
* executes each convolution as an exact integer GEMM, exposing the raw
  integer accumulators to a fault-injection hook (the paper's
  error-injection point: output activations *before* the activation
  function) and optionally recording the quantized operand streams that
  the systolic-array TER simulation replays.

Non-convolution operators (ReLU, pooling, residual adds, the final
classifier) execute in float — they are not in the MAC datapath under
study.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..arch.mapper import im2col
from ..errors import QuantizationError, TrainingError
from . import functional as F
from .layers import (
    BasicBlock,
    BatchNorm2d,
    Conv2d,
    Module,
    ReLU,
    Sequential,
)
from .models import ClassifierNetwork

#: Injection hook signature: (integer accumulators (pixels, K), layer) -> modified.
Injector = Callable[[np.ndarray, "QuantizedConv"], np.ndarray]


def fold_batchnorm(
    conv: Conv2d, bn: Optional[BatchNorm2d]
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold an inference-mode batch norm into conv weights and bias.

    Returns the effective float ``(weight, bias)`` such that
    ``bn(conv(x)) == conv'(x)`` with the running statistics.
    """
    weight = conv.weight.data.copy()
    bias = conv.bias.data.copy() if conv.bias is not None else np.zeros(weight.shape[0])
    if bn is None:
        return weight, bias
    inv_std = 1.0 / np.sqrt(bn.running_var + bn.eps)
    scale = bn.gamma.data * inv_std  # per output channel
    weight *= scale[:, None, None, None]
    bias = (bias - bn.running_mean) * scale + bn.beta.data
    return weight, bias


def quantize_weights(weight: np.ndarray, n_bits: int = 8) -> Tuple[np.ndarray, float]:
    """Per-tensor symmetric int8 quantization: returns ``(w_q, scale)``."""
    max_abs = float(np.abs(weight).max())
    if max_abs == 0:
        return np.zeros_like(weight, dtype=np.int64), 1.0
    q_max = (1 << (n_bits - 1)) - 1
    scale = max_abs / q_max
    w_q = np.clip(np.round(weight / scale), -q_max - 1, q_max).astype(np.int64)
    return w_q, scale


class QuantizedConv:
    """A conv layer executing as an integer GEMM on the accelerator.

    Lifecycle: constructed un-calibrated (``in_scale is None``) — forward
    then runs in float and records the input range; after
    :meth:`finalize_calibration` the forward path is the integer GEMM.

    Attributes
    ----------
    name:
        Source conv layer name (keys the per-layer TER/BER tables).
    weight_q / w_scale / bias:
        Folded, quantized parameters.
    injector:
        Optional fault hook applied to the raw accumulators.
    recorded_cols:
        When ``record`` is set, the most recent quantized im2col operand
        matrix ``(pixels, C*Fy*Fx)`` — the exact stream the systolic
        simulator replays for TER measurement.
    """

    def __init__(
        self,
        name: str,
        weight: np.ndarray,
        bias: np.ndarray,
        stride: int,
        padding: int,
        act_bits: int = 8,
    ) -> None:
        self.name = name
        self.weight_float = weight
        self.weight_q, self.w_scale = quantize_weights(weight)
        self.bias = bias
        self.stride = stride
        self.padding = padding
        self.act_bits = act_bits
        self.in_scale: Optional[float] = None
        self._observed_max = 0.0
        self.injector: Optional[Injector] = None
        self.record = False
        self.recorded_cols: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @property
    def out_channels(self) -> int:
        return self.weight_q.shape[0]

    @property
    def kernel_area(self) -> int:
        return self.weight_q.shape[2] * self.weight_q.shape[3]

    @property
    def n_macs_per_output(self) -> int:
        """Reduction length N of Eq. 1."""
        return int(np.prod(self.weight_q.shape[1:]))

    def lowered_weight_matrix(self) -> np.ndarray:
        """Quantized GEMM weight matrix ``(C*Fy*Fx, K)`` for READ planning."""
        k = self.weight_q.shape[0]
        return self.weight_q.reshape(k, -1).T.copy()

    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.in_scale is None:
            return self._forward_calibrate(x)
        return self._forward_quantized(x)

    __call__ = forward

    def _forward_calibrate(self, x: np.ndarray) -> np.ndarray:
        self._observed_max = max(self._observed_max, float(x.max(initial=0.0)))
        out, _ = F.conv2d_forward(x, self.weight_float, self.bias, self.stride, self.padding)
        return out

    def finalize_calibration(self) -> None:
        """Fix the activation scale from the observed calibration range."""
        if self._observed_max <= 0:
            raise QuantizationError(
                f"layer {self.name}: no positive activations observed during calibration"
            )
        self.in_scale = self._observed_max / ((1 << self.act_bits) - 1)

    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        """uint8-quantize a (non-negative) activation tensor."""
        if self.in_scale is None:
            raise QuantizationError(f"layer {self.name} is not calibrated")
        q_max = (1 << self.act_bits) - 1
        return np.clip(np.round(x / self.in_scale), 0, q_max).astype(np.int64)

    def _forward_quantized(self, x: np.ndarray) -> np.ndarray:
        n, _, h, w = x.shape
        k, _, fy, fx = self.weight_q.shape
        x_q = self.quantize_input(x)
        cols = im2col(x_q, fy, fx, stride=self.stride, padding=self.padding)
        if self.record:
            self.recorded_cols = cols
        acc = cols @ self.lowered_weight_matrix()  # (N*OH*OW, K) int64
        if self.injector is not None:
            acc = self.injector(acc, self)
        out = acc.astype(np.float64) * (self.in_scale * self.w_scale) + self.bias[None, :]
        oh, ow = F.conv_out_hw(h, w, fy, fx, self.stride, self.padding)
        return out.reshape(n, oh, ow, k).transpose(0, 3, 1, 2)


class _QBlock:
    """Quantized ResNet basic block (inference only)."""

    def __init__(self, block: BasicBlock) -> None:
        self.qconv1 = _fold_to_qconv(block.conv1, block.bn1)
        self.qconv2 = _fold_to_qconv(block.conv2, block.bn2)
        if block.shortcut_conv is not None:
            self.qshortcut: Optional[QuantizedConv] = _fold_to_qconv(
                block.shortcut_conv, block.shortcut_bn
            )
        else:
            self.qshortcut = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = np.maximum(self.qconv1(x), 0.0)
        main = self.qconv2(main)
        residual = self.qshortcut(x) if self.qshortcut is not None else x
        return np.maximum(main + residual, 0.0)

    __call__ = forward

    def qconvs(self) -> List[QuantizedConv]:
        convs = [self.qconv1, self.qconv2]
        if self.qshortcut is not None:
            convs.append(self.qshortcut)
        return convs


def _fold_to_qconv(conv: Conv2d, bn: Optional[BatchNorm2d]) -> QuantizedConv:
    weight, bias = fold_batchnorm(conv, bn)
    return QuantizedConv(
        name=conv.name, weight=weight, bias=bias, stride=conv.stride, padding=conv.padding
    )


class QuantizedNetwork:
    """Integer-inference version of a trained :class:`ClassifierNetwork`.

    Construction folds/quantizes every convolution; call
    :meth:`calibrate` with a representative batch before inference.
    """

    def __init__(self, model: ClassifierNetwork) -> None:
        model.eval()
        self.name = model.name
        self._ops: List[object] = []
        self._build(model.features)
        self.head = model.head  # float classifier
        self._calibrated = False

    # ------------------------------------------------------------------ #
    def _build(self, features: Sequential) -> None:
        layers = list(features)
        i = 0
        while i < len(layers):
            layer = layers[i]
            if isinstance(layer, Conv2d):
                bn = None
                if i + 1 < len(layers) and isinstance(layers[i + 1], BatchNorm2d):
                    bn = layers[i + 1]
                    i += 1
                self._ops.append(_fold_to_qconv(layer, bn))
            elif isinstance(layer, BasicBlock):
                self._ops.append(_QBlock(layer))
            elif isinstance(layer, BatchNorm2d):
                raise QuantizationError("unfused BatchNorm without preceding conv")
            else:
                self._ops.append(layer)  # ReLU / pooling / etc. run in float
            i += 1

    # ------------------------------------------------------------------ #
    def qconvs(self, include_shortcuts: bool = False) -> List[QuantizedConv]:
        """Quantized conv layers in execution order (Fig. 8's unit)."""
        convs: List[QuantizedConv] = []
        for op in self._ops:
            if isinstance(op, QuantizedConv):
                convs.append(op)
            elif isinstance(op, _QBlock):
                for qc in op.qconvs():
                    if not include_shortcuts and "shortcut" in qc.name:
                        continue
                    convs.append(qc)
        return convs

    def _forward_features(self, x: np.ndarray) -> np.ndarray:
        for op in self._ops:
            if isinstance(op, (QuantizedConv, _QBlock)):
                x = op(x)
            elif isinstance(op, ReLU):
                x = np.maximum(x, 0.0)
            elif isinstance(op, Module):
                op.training = False
                x = op.forward(x)
            else:  # pragma: no cover - defensive
                raise TrainingError(f"unexpected op {op!r}")
        return x

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Full inference: quantized features, float head."""
        if not self._calibrated:
            raise QuantizationError("call calibrate(batch) before inference")
        return self.head.forward(self._forward_features(x))

    __call__ = forward

    # ------------------------------------------------------------------ #
    def calibrate(self, x: np.ndarray) -> None:
        """One float pass to fix all activation scales."""
        self._forward_features(x)
        for qc in self.qconvs(include_shortcuts=True):
            qc.finalize_calibration()
        self._calibrated = True

    def set_injector(self, injector: Optional[Injector]) -> None:
        """Install (or clear) the fault hook on every conv layer."""
        for qc in self.qconvs(include_shortcuts=True):
            qc.injector = injector

    def set_recording(self, record: bool) -> None:
        """Toggle operand-stream recording on every conv layer."""
        for qc in self.qconvs(include_shortcuts=True):
            qc.record = record
            if not record:
                qc.recorded_cols = None

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        topk: int = 1,
        batch_size: int = 128,
        injector: Optional[Injector] = None,
    ) -> float:
        """Top-k accuracy of quantized inference, optionally fault-injected."""
        self.set_injector(injector)
        try:
            correct_weighted = 0.0
            for start in range(0, x.shape[0], batch_size):
                xb = x[start : start + batch_size]
                yb = y[start : start + batch_size]
                logits = self.forward(xb)
                correct_weighted += F.accuracy(logits, yb, topk=topk) * xb.shape[0]
            return correct_weighted / x.shape[0]
        finally:
            self.set_injector(None)
